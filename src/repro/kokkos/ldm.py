"""Local Data Memory (LDM) and DMA models for the Sunway CPE.

Each CPE of the SW26010 Pro owns 256 kB of low-latency scratchpad shared
between software-managed LDM and a local data cache, fed by DMA from main
memory (§VI-A).  The Athread backend uses these models to

* size tiles so a tile's working set fits in LDM,
* account DMA traffic per kernel (get before compute, put after), and
* model the double-buffered pipeline the paper uses for
  ``advection_tracer`` ("a double-buffered technique that leverages the
  asynchronous mechanism ... between the CPE workload execution and DMA
  transfers", §V-C2): with two buffers, transfer of tile *k+1* overlaps
  compute of tile *k*, so steady-state time per tile is
  ``max(compute, transfer)`` instead of ``compute + transfer``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..errors import LDMError

#: Default per-CPE scratchpad capacity (bytes) of the SW26010 Pro.
SW26010_LDM_BYTES = 256 * 1024


@dataclass
class LDMAllocator:
    """A bump allocator over one CPE's scratchpad.

    Tracks live allocations by name; raises :class:`LDMError` when a
    request would exceed capacity — the same hard wall real CPE code
    hits when a tile's working set outgrows LDM.
    """

    capacity: int = SW26010_LDM_BYTES
    used: int = 0
    allocations: Dict[str, int] = field(default_factory=dict)
    high_water: int = 0

    def alloc(self, name: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if name in self.allocations:
            raise LDMError(f"LDM allocation {name!r} already exists")
        if self.used + nbytes > self.capacity:
            raise LDMError(
                f"LDM overflow: {name!r} needs {nbytes} B but only "
                f"{self.capacity - self.used} of {self.capacity} B free"
            )
        self.allocations[name] = nbytes
        self.used += nbytes
        self.high_water = max(self.high_water, self.used)

    def record_peak(self, nbytes: int) -> None:
        """Raise ``high_water`` as if ``nbytes`` were live right now.

        Sealed launch plans prove at seal time that every tile fits and
        that alloc/free strictly bracket each tile, so a replay can
        record the launch's peak occupancy in one call instead of
        churning the allocator per tile; ``high_water`` ends identical
        to the eager path.
        """
        peak = self.used + nbytes
        if peak > self.high_water:
            self.high_water = peak

    def free(self, name: str) -> None:
        nbytes = self.allocations.pop(name, None)
        if nbytes is None:
            raise LDMError(f"LDM free of unknown allocation {name!r}")
        self.used -= nbytes

    def reset(self) -> None:
        self.allocations.clear()
        self.used = 0

    def fits(self, nbytes: int) -> bool:
        """Would a fresh allocation of ``nbytes`` succeed right now?"""
        return self.used + nbytes <= self.capacity


@dataclass
class DMAEngine:
    """Ledger of DMA transfers between main memory and LDM.

    ``bandwidth`` and ``latency`` are used only by the analytic cost
    helpers; functional execution just records volumes.
    """

    bandwidth: float = 51.2e9  # bytes/s, SW26010 Pro CG memory bandwidth
    latency: float = 1.0e-6    # seconds per DMA descriptor
    get_bytes: float = 0.0
    put_bytes: float = 0.0
    get_count: int = 0
    put_count: int = 0

    # Optional repro.trace.Tracer (class attribute, not a dataclass
    # field, so ledger equality and repr are unchanged); the owning
    # ExecutionContext assigns it when tracing is enabled.
    tracer = None

    def get(self, nbytes: float) -> None:
        """Record a main-memory -> LDM transfer."""
        self.get_bytes += nbytes
        self.get_count += 1
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.instant("dma_get", cat="xfer", bytes=float(nbytes))

    def put(self, nbytes: float) -> None:
        """Record an LDM -> main-memory transfer."""
        self.put_bytes += nbytes
        self.put_count += 1
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.instant("dma_put", cat="xfer", bytes=float(nbytes))

    def get_batch(self, total_bytes: float, count: int) -> None:
        """Record ``count`` gets totalling ``total_bytes`` in one call.

        Sealed launch plans pre-sum their per-tile staging sizes so a
        replay updates the ledger once per launch instead of once per
        tile; the end-of-step totals match the eager path.
        """
        self.get_bytes += total_bytes
        self.get_count += count
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.instant("dma_get", cat="xfer", bytes=float(total_bytes),
                       descriptors=int(count))

    def put_batch(self, total_bytes: float, count: int) -> None:
        """Record ``count`` puts totalling ``total_bytes`` in one call."""
        self.put_bytes += total_bytes
        self.put_count += count
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.instant("dma_put", cat="xfer", bytes=float(total_bytes),
                       descriptors=int(count))

    @property
    def total_bytes(self) -> float:
        return self.get_bytes + self.put_bytes

    @property
    def total_count(self) -> int:
        return self.get_count + self.put_count

    def transfer_time(self, nbytes: float) -> float:
        """Analytic time for one transfer of ``nbytes``."""
        return self.latency + nbytes / self.bandwidth

    def reset(self) -> None:
        self.get_bytes = self.put_bytes = 0.0
        self.get_count = self.put_count = 0


def double_buffered_time(
    compute_per_tile: float,
    transfer_per_tile: float,
    num_tiles: int,
    buffers: int = 2,
) -> float:
    """Pipeline time for ``num_tiles`` tiles with ``buffers`` DMA buffers.

    With a single buffer the stages serialise; with two or more, the
    steady-state per-tile cost is the max of the stages, plus the
    pipeline fill (one leading transfer) and drain (one trailing
    compute/put).

    Returns the total seconds for the tile sweep.
    """
    if num_tiles <= 0:
        return 0.0
    if buffers <= 1:
        return num_tiles * (compute_per_tile + transfer_per_tile)
    steady = max(compute_per_tile, transfer_per_tile)
    return transfer_per_tile + (num_tiles - 1) * steady + compute_per_tile


def haloed_tile_points(tile: Sequence[int], stencil_halo: int) -> int:
    """Points a CPE must stage for one tile including its stencil ring.

    A functor with ``stencil_halo = h`` reads ``+-h`` neighbours on the
    horizontal (last two) loop axes, so each DMA get must fetch the tile
    grown by ``2 h`` points per horizontal axis (a 1-D tile grows only
    its single axis).  ``h = 0`` is exactly the plain tile volume, and
    ``repro.analysis`` cross-checks declared halos against this model.
    """
    dims = [max(1, int(t)) for t in tile]
    h = max(0, int(stencil_halo))
    if h:
        for ax in range(max(0, len(dims) - 2), len(dims)):
            dims[ax] += 2 * h
    return math.prod(dims)


def max_tile_points(
    bytes_per_point: float,
    capacity: int = SW26010_LDM_BYTES,
    buffers: int = 2,
    reserve: int = 8 * 1024,
) -> int:
    """Largest tile (in points) whose working set fits in LDM.

    ``buffers`` working sets must fit simultaneously when double
    buffering; ``reserve`` bytes are kept for stack/locals, mirroring
    real CPE code budgets.
    """
    if bytes_per_point <= 0:
        bytes_per_point = 8.0
    usable = max(0, capacity - reserve)
    per_buffer = usable // max(1, buffers)
    return max(1, int(per_buffer // bytes_per_point))
