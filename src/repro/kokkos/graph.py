"""``LaunchGraph``: step-graph capture & replay with elementwise fusion.

The Kokkos-Graphs / CUDA-Graphs idiom, applied to the Python dispatch
path: the model records one baroclinic step's launch sequence — labels,
normalised policies and *bound functor instances* — then subsequent
steps ``replay()`` through per-backend :class:`~.backends.base.LaunchPlan`
objects with near-zero dispatch work.  Host-side glue between launches
(halo exchanges, fences, `.raw` copies) is captured as :class:`HostNode`
closures and replayed in sequence, so the graph reproduces the eager
step exactly.

Two mechanisms keep replay valid across steps:

* **Rebindable view slots** — leapfrog old/cur/new rotation swaps the
  buffers *beneath* stable ``View`` objects (``View.rebind``), so the
  functor instances captured once keep seeing the advancing time
  levels.  Rotation therefore never forces a re-capture.
* **Signature invalidation** — the owner stores a binding signature
  (view identities + numeric parameters baked into functor instances)
  on the sealed graph; when it no longer matches, the model drops the
  graph and re-captures.

On top of the recording, :meth:`LaunchGraph.seal` runs an *elementwise
fusion* pass: maximal runs of adjacent ``parallel_for`` launches with
identical iteration ranges, zero ``stencil_halo`` and no intervening
host node are merged into a single :class:`FusedTileFunctor` sweep.
Point-local bodies over the same range commute with tiling, so the
fused launch is bitwise identical to the sequence under any backend —
while paying one launch (one spawn/join on the CPEs, one kernel launch
on the GPU) instead of N.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Callable, List, Optional, Sequence, Tuple

from .backends.base import ExecutionSpace, apply_tile
from .functor import kokkos_register_for
from .policy import MDRangePolicy, as_md

#: Shared no-op context: the traced paths allocate nothing when tracing
#: is off, keeping graph replay dispatch at its measured cost.
_NO_SPAN = nullcontext()


@kokkos_register_for("fused_elementwise", ndim=3)
class FusedTileFunctor:
    """N adjacent elementwise launches executed as one tile sweep.

    Each part runs over the same slices in capture order, so within any
    tile the arithmetic sequence is exactly the eager one; because every
    part is point-local (``stencil_halo == 0``), no part reads what a
    previous part wrote outside the current tile, and the fusion is
    bitwise safe under any tiling.

    Cost metadata is the sum of the parts' declarations, so the
    instrumentation and the Athread LDM sizing stay honest.
    """

    #: Composite body: kernelcheck analyses the parts individually.
    __kernelcheck_skip__ = True
    stencil_halo = 0

    def __init__(self, parts: Sequence, labels: Sequence[str]) -> None:
        self.parts = list(parts)
        self.labels = list(labels)
        self.flops_per_point = sum(
            float(getattr(p, "flops_per_point", 0.0)) for p in parts)
        self.bytes_per_point = sum(
            float(getattr(p, "bytes_per_point", 8.0)) for p in parts)
        self.bytes_in_per_point = sum(
            float(getattr(p, "bytes_in_per_point",
                          getattr(p, "bytes_per_point", 8.0) * 2.0 / 3.0))
            for p in parts)
        self.bytes_out_per_point = sum(
            float(getattr(p, "bytes_out_per_point",
                          getattr(p, "bytes_per_point", 8.0) / 3.0))
            for p in parts)

    def __call__(self, *idx: int) -> None:
        for p in self.parts:
            p(*idx)

    def apply(self, slices: Tuple[slice, ...]) -> None:
        for p in self.parts:
            apply_tile(p, slices)


class KernelNode:
    """One recorded ``parallel_for`` (label, policy, bound functor)."""

    __slots__ = ("label", "policy", "functor", "plan")

    def __init__(self, label: str, policy: MDRangePolicy, functor) -> None:
        self.label = label
        self.policy = policy
        self.functor = functor
        self.plan = None

    def fusible(self) -> bool:
        return (self.policy.tile is None
                and int(getattr(self.functor, "stencil_halo", 0)) == 0)


class HostNode:
    """Host-side glue replayed verbatim between launches."""

    __slots__ = ("fn", "label")

    def __init__(self, fn: Callable[[], None], label: str = "host") -> None:
        self.fn = fn
        self.label = label


class LaunchGraph:
    """A captured launch sequence, sealable into a replayable plan list."""

    def __init__(self, space: ExecutionSpace, fuse: bool = True) -> None:
        self.space = space
        self.fuse = fuse
        self.nodes: List[object] = []
        self.sealed = False
        #: Binding signature the owner compares to decide re-capture.
        self.signature: Optional[tuple] = None
        self.replays = 0
        self.captured_launches = 0
        self.fused_groups = 0

    # -- capture -----------------------------------------------------------

    def add_kernel(self, label: str, policy, functor) -> None:
        if self.sealed:
            raise RuntimeError("cannot record into a sealed LaunchGraph")
        self.nodes.append(KernelNode(label, as_md(policy), functor))
        self.captured_launches += 1

    def add_host(self, fn: Callable[[], None], label: str = "host") -> None:
        if self.sealed:
            raise RuntimeError("cannot record into a sealed LaunchGraph")
        self.nodes.append(HostNode(fn, label))

    # -- fusion ------------------------------------------------------------

    def _fuse_nodes(self, nodes: List[object]) -> List[object]:
        out: List[object] = []
        group: List[KernelNode] = []

        def flush() -> None:
            if len(group) >= 2:
                label = "fused[" + "+".join(n.label for n in group) + "]"
                functor = FusedTileFunctor([n.functor for n in group],
                                           [n.label for n in group])
                out.append(KernelNode(label, group[0].policy, functor))
                self.fused_groups += 1
            else:
                out.extend(group)
            group.clear()

        for node in nodes:
            if isinstance(node, KernelNode) and node.fusible():
                if group and node.policy.ranges != group[0].policy.ranges:
                    flush()
                group.append(node)
            else:
                flush()
                out.append(node)
        flush()
        return out

    # -- seal / replay -----------------------------------------------------

    def _span(self, name: str, **args):
        tr = getattr(self.space, "tracer", None)
        if tr is not None and tr.enabled:
            return tr.span(name, cat="graph", **args)
        return _NO_SPAN

    def seal(self) -> "LaunchGraph":
        """Fuse compatible launches and prepare per-backend plans."""
        if self.sealed:
            return self
        with self._span("graph_seal", captured=self.captured_launches):
            if self.fuse:
                self.nodes = self._fuse_nodes(self.nodes)
            for node in self.nodes:
                if isinstance(node, KernelNode):
                    node.plan = self.space.prepare_plan(
                        node.label, node.policy, node.functor)
        self.sealed = True
        return self

    def replay(self) -> None:
        """Re-execute the captured step through the cached plans."""
        if not self.sealed:
            raise RuntimeError("seal() the LaunchGraph before replay()")
        with self._span("graph_replay", launches=self.launches_per_replay,
                        fused_groups=self.fused_groups):
            run_plan = self.space.run_plan
            for node in self.nodes:
                if isinstance(node, KernelNode):
                    run_plan(node.plan)
                else:
                    node.fn()
        self.replays += 1

    # -- introspection -----------------------------------------------------

    @property
    def launches_per_replay(self) -> int:
        """Kernel launches one replay issues (after fusion)."""
        return sum(1 for n in self.nodes if isinstance(n, KernelNode))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        hosts = sum(1 for n in self.nodes if isinstance(n, HostNode))
        return (f"LaunchGraph(launches={self.launches_per_replay}, "
                f"hosts={hosts}, captured={self.captured_launches}, "
                f"fused_groups={self.fused_groups}, sealed={self.sealed})")
