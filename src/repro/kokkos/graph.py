"""``LaunchGraph``: step-graph capture & replay with elementwise fusion.

The Kokkos-Graphs / CUDA-Graphs idiom, applied to the Python dispatch
path: the model records one baroclinic step's launch sequence — labels,
normalised policies and *bound functor instances* — then subsequent
steps ``replay()`` through per-backend :class:`~.backends.base.LaunchPlan`
objects with near-zero dispatch work.  Host-side glue between launches
(halo exchanges, fences, `.raw` copies) is captured as :class:`HostNode`
closures and replayed in sequence, so the graph reproduces the eager
step exactly.

Two mechanisms keep replay valid across steps:

* **Rebindable view slots** — leapfrog old/cur/new rotation swaps the
  buffers *beneath* stable ``View`` objects (``View.rebind``), so the
  functor instances captured once keep seeing the advancing time
  levels.  Rotation therefore never forces a re-capture.
* **Signature invalidation** — the owner stores a binding signature
  (view identities + numeric parameters baked into functor instances)
  on the sealed graph; when it no longer matches, the model drops the
  graph and re-captures.

On top of the recording, :meth:`LaunchGraph.seal` runs a *fusion* pass
over maximal runs of adjacent ``parallel_for`` launches with identical
iteration ranges and no intervening host node:

* **Elementwise fusion** — runs whose parts are all point-local
  (``stencil_halo == 0``) merge into one :class:`FusedTileFunctor`
  sweep.  Point-local bodies over the same range commute with tiling,
  so the fused launch is bitwise identical under any backend — while
  paying one launch (one spawn/join on the CPEs, one kernel launch on
  the GPU) instead of N.
* **Halo-aware stencil fusion** — runs containing stencil parts
  (``stencil_halo > 0``, the declaration kernelcheck already enforces)
  merge into a :class:`FusedStencilFunctor` when the parts are provably
  independent (no cross-part read/write hazard, from the kernelcheck
  footprints — see :func:`repro.kokkos.jit.parts_independent`), and
  — with the compiled tier on — even when they form a dependent chain,
  because the compiled sweep runs each part whole-range with a stage
  barrier between parts, reproducing the eager sequence exactly.

Finally, when the ``jit`` knob resolves on (default; see
:func:`repro.kokkos.jit.resolve_jit` / ``REPRO_JIT``), every sealed
plan is lowered through :mod:`repro.kokkos.jit` into a compiled sweep
cached on the owning execution space; plans that fail to lower degrade
to their eager tier, and dependent stencil chains that cannot be
compiled are un-fused back into the captured launches.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import jit as _jit
from .backends.base import ExecutionSpace, apply_tile
from .functor import kokkos_register_for
from .policy import MDRangePolicy, as_md

#: Shared no-op context: the traced paths allocate nothing when tracing
#: is off, keeping graph replay dispatch at its measured cost.
_NO_SPAN = nullcontext()


@kokkos_register_for("fused_elementwise", ndim=3)
class FusedTileFunctor:
    """N adjacent elementwise launches executed as one tile sweep.

    Each part runs over the same slices in capture order, so within any
    tile the arithmetic sequence is exactly the eager one; because every
    part is point-local (``stencil_halo == 0``), no part reads what a
    previous part wrote outside the current tile, and the fusion is
    bitwise safe under any tiling.

    Cost metadata is the sum of the parts' declarations, so the
    instrumentation and the Athread LDM sizing stay honest.
    """

    #: Composite body: kernelcheck analyses the parts individually.
    __kernelcheck_skip__ = True
    stencil_halo = 0

    def __init__(self, parts: Sequence, labels: Sequence[str]) -> None:
        self.parts = list(parts)
        self.labels = list(labels)
        self.flops_per_point = sum(
            float(getattr(p, "flops_per_point", 0.0)) for p in parts)
        self.bytes_per_point = sum(
            float(getattr(p, "bytes_per_point", 8.0)) for p in parts)
        self.bytes_in_per_point = sum(
            float(getattr(p, "bytes_in_per_point",
                          getattr(p, "bytes_per_point", 8.0) * 2.0 / 3.0))
            for p in parts)
        self.bytes_out_per_point = sum(
            float(getattr(p, "bytes_out_per_point",
                          getattr(p, "bytes_per_point", 8.0) / 3.0))
            for p in parts)

    def __call__(self, *idx: int) -> None:
        for p in self.parts:
            p(*idx)

    def apply(self, slices: Tuple[slice, ...]) -> None:
        for p in self.parts:
            apply_tile(p, slices)


@kokkos_register_for("fused_stencil", ndim=3)
class FusedStencilFunctor(FusedTileFunctor):
    """N adjacent stencil launches executed as one halo-aware sweep.

    The instance's ``stencil_halo`` is the widest ring any part reads,
    so the Athread backend stages (and the LDM fit proof covers) the
    union working set.  Safety is decided at fusion time: independent
    parts commute with tiling like elementwise parts do; *dependent*
    chains are only ever fused when the compiled tier executes them —
    whole-range, part by part (interior and rim alike), which is
    exactly the eager launch sequence.
    """

    #: Composite body: kernelcheck analyses the parts individually.
    __kernelcheck_skip__ = True

    def __init__(self, parts: Sequence, labels: Sequence[str],
                 halo: int) -> None:
        super().__init__(parts, labels)
        self.stencil_halo = int(halo)


class KernelNode:
    """One recorded ``parallel_for`` (label, policy, bound functor)."""

    __slots__ = ("label", "policy", "functor", "plan", "fallback")

    def __init__(self, label: str, policy: MDRangePolicy, functor) -> None:
        self.label = label
        self.policy = policy
        self.functor = functor
        self.plan = None
        #: Original captured nodes to fall back to when this node is a
        #: dependent fused chain and the compiled tier is unavailable.
        self.fallback: Optional[List["KernelNode"]] = None

    def halo(self) -> int:
        return max(0, int(getattr(self.functor, "stencil_halo", 0)))

    def fusible(self) -> bool:
        return self.policy.tile is None and self.halo() == 0

    def can_fuse(self, other: "KernelNode") -> bool:
        """May ``other`` join a fusion group ending with this node?"""
        return (self.policy.tile is None and other.policy.tile is None
                and self.policy.ranges == other.policy.ranges)

    def parts(self) -> List[Tuple[str, object]]:
        """Per-plan-part ``(label, functor)`` pairs.

        Fused nodes expose their member bodies; a plain launch is its
        own single part.  This is the unit the graphcheck verifier
        builds kernelcheck footprints for.
        """
        inner = getattr(self.functor, "parts", None)
        if inner:
            labels = getattr(self.functor, "labels", None) or \
                [self.label] * len(inner)
            return list(zip(labels, inner))
        return [(self.label, self.functor)]


class HostEffects:
    """Declared dataflow effects of one host node.

    Host closures are opaque to static analysis, so the recorder
    declares what a node does to the views the launches around it
    touch; the graphcheck verifier walks these between launches.

    ``reads`` / ``writes`` are views (or arrays) the closure consumes /
    fully overwrites on the host; ``halo_refresh`` are views whose
    ghost cells the closure exchanges (an implicit interior read);
    ``rotates`` are ``(old, cur, new)`` view triples whose *buffers*
    the closure permutes (leapfrog rotation); ``fences`` is True when
    the closure fences the space before touching any data.  A node
    recorded without effects is treated as an opaque barrier.
    """

    __slots__ = ("reads", "writes", "halo_refresh", "rotates", "fences")

    def __init__(self, reads: Sequence = (), writes: Sequence = (),
                 halo_refresh: Sequence = (), rotates: Sequence = (),
                 fences: bool = False) -> None:
        self.reads = tuple(reads)
        self.writes = tuple(writes)
        self.halo_refresh = tuple(halo_refresh)
        self.rotates = tuple(tuple(r) for r in rotates)
        self.fences = bool(fences)


class HostNode:
    """Host-side glue replayed verbatim between launches."""

    __slots__ = ("fn", "label", "effects")

    def __init__(self, fn: Callable[[], None], label: str = "host",
                 effects: Optional[HostEffects] = None) -> None:
        self.fn = fn
        self.label = label
        #: Declared dataflow effects (None = opaque barrier).
        self.effects = effects


class LaunchGraph:
    """A captured launch sequence, sealable into a replayable plan list."""

    def __init__(self, space: ExecutionSpace, fuse: bool = True,
                 jit: Optional[bool] = None) -> None:
        self.space = space
        self.fuse = fuse
        #: Compiled execution tier (resolved: explicit arg beats the
        #: ``REPRO_JIT`` environment override beats the on-default).
        self.jit = _jit.resolve_jit(jit)
        self.nodes: List[object] = []
        self.sealed = False
        #: Binding signature the owner compares to decide re-capture.
        self.signature: Optional[tuple] = None
        self.replays = 0
        self.captured_launches = 0
        self.fused_groups = 0

    # -- capture -----------------------------------------------------------

    def add_kernel(self, label: str, policy, functor) -> None:
        if self.sealed:
            raise RuntimeError("cannot record into a sealed LaunchGraph")
        self.nodes.append(KernelNode(label, as_md(policy), functor))
        self.captured_launches += 1

    def add_host(self, fn: Callable[[], None], label: str = "host",
                 effects: Optional[HostEffects] = None) -> HostNode:
        if self.sealed:
            raise RuntimeError("cannot record into a sealed LaunchGraph")
        node = HostNode(fn, label, effects)
        self.nodes.append(node)
        return node

    # -- fusion ------------------------------------------------------------

    def _fused_node(self, run: List[KernelNode],
                    fallback: Optional[List[KernelNode]]) -> KernelNode:
        label = "fused[" + "+".join(n.label for n in run) + "]"
        parts = [n.functor for n in run]
        labels = [n.label for n in run]
        halo = max(n.halo() for n in run)
        if halo == 0:
            functor = FusedTileFunctor(parts, labels)
        else:
            functor = FusedStencilFunctor(parts, labels, halo)
        node = KernelNode(label, run[0].policy, functor)
        node.fallback = fallback
        self.fused_groups += 1
        return node

    def _segment_independent(self, group: List[KernelNode]
                             ) -> List[KernelNode]:
        """Greedy maximal tiling-safe runs of a same-range group.

        A run may grow while it is either all point-local or provably
        independent (:func:`repro.kokkos.jit.parts_independent`); the
        first hazard — or analysis failure, treated as a hazard —
        flushes it.  Used for the interpreted tiers, whose tiled sweeps
        cannot honour cross-part dependences.
        """
        out: List[KernelNode] = []
        run: List[KernelNode] = []

        def flush() -> None:
            if len(run) >= 2:
                out.append(self._fused_node(list(run), None))
            else:
                out.extend(run)
            run.clear()

        ndim = len(group[0].policy.extents)
        for node in group:
            cand = run + [node]
            if len(cand) > 1 and max(n.halo() for n in cand) > 0 \
                    and _jit.parts_independent(
                        [n.functor for n in cand], ndim) is not True:
                flush()
            run.append(node)
        flush()
        return out

    def _flush_group(self, group: List[KernelNode],
                     out: List[object]) -> None:
        if not group:
            return
        if len(group) == 1:
            out.append(group[0])
            return
        if max(n.halo() for n in group) == 0:
            out.append(self._fused_node(list(group), None))
            return
        if self.jit:
            # the compiled sweep runs each part whole-range with a stage
            # barrier, so even dependent chains fuse — but keep the
            # captured nodes around in case lowering fails at seal time
            ndim = len(group[0].policy.extents)
            indep = _jit.parts_independent(
                [n.functor for n in group], ndim)
            fallback = None if indep is True else list(group)
            out.append(self._fused_node(list(group), fallback))
            return
        out.extend(self._segment_independent(group))

    def _fuse_nodes(self, nodes: List[object]) -> List[object]:
        out: List[object] = []
        group: List[KernelNode] = []
        for node in nodes:
            if isinstance(node, KernelNode) and node.policy.tile is None:
                if group and not group[-1].can_fuse(node):
                    self._flush_group(group, out)
                    group = []
                group.append(node)
            else:
                self._flush_group(group, out)
                group = []
                out.append(node)
        self._flush_group(group, out)
        return out

    # -- seal / replay -----------------------------------------------------

    def _span(self, name: str, **args):
        tr = getattr(self.space, "tracer", None)
        if tr is not None and tr.enabled:
            return tr.span(name, cat="graph", **args)
        return _NO_SPAN

    def seal(self, certify: bool = False) -> "LaunchGraph":
        """Fuse compatible launches and prepare per-backend plans.

        With the compiled tier on, each prepared plan is additionally
        lowered through :mod:`repro.kokkos.jit` (cached on the owning
        execution space); failures degrade per plan to the eager tier.

        With ``certify=True`` the sealed schedule is re-proven by the
        independent graphcheck verifier
        (:func:`repro.analysis.graphcheck.certify_fusion`): any fused
        node whose parts it cannot prove tiling-safe on an interpreted
        tier raises :class:`~repro.errors.GraphCertificationError`
        instead of sealing a schedule that could diverge from eager.
        """
        if self.sealed:
            return self
        with self._span("graph_seal", captured=self.captured_launches):
            if self.fuse:
                self.nodes = self._fuse_nodes(self.nodes)
            cache = None
            if self.jit:
                cache = getattr(self.space, "jit_cache", None)
                if cache is None:
                    cache = self.space.jit_cache = _jit.JitCache()
            final: List[object] = []
            for node in self.nodes:
                if isinstance(node, KernelNode):
                    self._prepare_node(node, cache, final)
                else:
                    final.append(node)
            self.nodes = final
        self.sealed = True
        if certify:
            from ..analysis.graphcheck import certify_fusion, certify_precision
            from ..errors import GraphCertificationError

            refused = certify_fusion(self)
            if refused:
                raise GraphCertificationError(
                    "sealed graph failed fusion certification:\n"
                    + "\n".join(f.format() for f in refused))
            promoted = certify_precision(self)
            if promoted:
                raise GraphCertificationError(
                    "sealed graph failed precision certification "
                    "(silent fp32->fp64 promotion):\n"
                    + "\n".join(f.format() for f in promoted))
        return self

    def _prepare_node(self, node: KernelNode, cache, out: List[object]) -> None:
        plan = None
        sweep = None
        failure: Optional[BaseException] = None
        try:
            plan = self.space.prepare_plan(node.label, node.policy,
                                           node.functor)
            if cache is not None and getattr(plan, "supports_compiled",
                                             False):
                sweep = _jit.compile_sweep(self.space, node.label,
                                           node.policy, node.functor, cache)
        except Exception as exc:
            failure = exc
        if node.fallback is not None and sweep is None:
            # a dependent stencil chain is only valid fused when the
            # compiled tier guarantees whole-range stage barriers;
            # without one, un-fuse back into tiling-safe pieces
            self.fused_groups -= 1
            for orig in self._segment_independent(node.fallback):
                self._prepare_node(orig, cache, out)
            return
        if failure is not None:
            raise failure
        if sweep is not None:
            plan.attach_compiled(sweep)
        node.plan = plan
        out.append(node)

    def replay(self) -> None:
        """Re-execute the captured step through the cached plans."""
        if not self.sealed:
            raise RuntimeError("seal() the LaunchGraph before replay()")
        with self._span("graph_replay", launches=self.launches_per_replay,
                        fused_groups=self.fused_groups):
            run_plan = self.space.run_plan
            for node in self.nodes:
                if isinstance(node, KernelNode):
                    run_plan(node.plan)
                else:
                    node.fn()
        self.replays += 1

    # -- introspection -----------------------------------------------------

    @property
    def launches_per_replay(self) -> int:
        """Kernel launches one replay issues (after fusion)."""
        return sum(1 for n in self.nodes if isinstance(n, KernelNode))

    def kernel_tiers(self) -> List[Tuple[str, str]]:
        """Per-kernel (label, execution tier) of the sealed graph."""
        return [(n.label, getattr(n.plan, "tier", "eager"))
                for n in self.nodes if isinstance(n, KernelNode)]

    @property
    def compiled_launches(self) -> int:
        """Launches per replay served by a compiled (non-eager) tier."""
        return sum(1 for _, tier in self.kernel_tiers() if tier != "eager")

    @property
    def jit_coverage(self) -> float:
        """Fraction of replayed launches on a compiled tier."""
        launches = self.launches_per_replay
        return self.compiled_launches / launches if launches else 0.0

    def stats(self) -> Dict[str, object]:
        """One sealed graph's vitals as a plain dict.

        The serving layer reports these per shared engine (how much work
        one sealed plan amortised across jobs); keys are stable and all
        values are JSON-serialisable.
        """
        return {
            "sealed": self.sealed,
            "captured_launches": self.captured_launches,
            "launches_per_replay": self.launches_per_replay,
            "fused_groups": self.fused_groups,
            "compiled_launches": self.compiled_launches,
            "jit_coverage": self.jit_coverage,
            "replays": self.replays,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        hosts = sum(1 for n in self.nodes if isinstance(n, HostNode))
        return (f"LaunchGraph(launches={self.launches_per_replay}, "
                f"hosts={hosts}, captured={self.captured_launches}, "
                f"fused_groups={self.fused_groups}, "
                f"compiled={self.compiled_launches}, sealed={self.sealed})")
