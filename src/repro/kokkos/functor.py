"""Functor protocol and the ``KOKKOS_REGISTER_*`` macro analogs.

A *functor* is a class whose instances hold views and expose:

``__call__(self, *idx)``
    The elementwise kernel body — Kokkos' ``operator()``.  Always
    required; it is the portable ground truth that backends and tests
    fall back to.

``apply(self, slices)`` (optional)
    A vectorised tile body: given a tuple of slices (one per loop
    dimension) it updates the functor's views over the whole tile using
    array operations.  Backends prefer it when present — it is the
    Python stand-in for the compiled inner loop, and the HPC guides'
    "vectorise your loops" rule.  Implementations must be equivalent to
    looping ``__call__`` over the tile (tests enforce this for the
    model's kernels).

``reduce(self, *idx) -> value`` / ``reduce_apply(self, slices) -> value``
    For ``parallel_reduce``: per-point contribution and vectorised
    partial reduction under the policy's reducer.

Cost-model metadata (used by the instrumentation and the machine model):

``flops_per_point`` / ``bytes_per_point``
    Declared floating-point work and memory traffic per iteration point.
    Ocean kernels declare honest stencil counts; the default (0 flops,
    8 bytes) under-counts and is fine for utility kernels.

The registration decorators mirror the paper's new Kokkos syntax
(``KOKKOS_REGISTER_FOR_1D(Arg1, Arg2)``): they create a *preset function*
that reinterprets the (Python) "template" functor and invokes its
``operator()`` on the CPEs, then insert it into the global linked-list
registry so the Athread backend can find it at launch time.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from .registry import RegistryEntry, default_registry


class Functor:
    """Optional convenience base class for kernels.

    Deriving from it is not required — any object satisfying the functor
    protocol works — but it centralises the cost-model defaults.
    """

    #: Declared floating-point operations per iteration point.
    flops_per_point: float = 0.0
    #: Declared bytes moved per iteration point (reads + writes).
    bytes_per_point: float = 8.0
    #: Widest horizontal stencil offset (``±k`` on the last two loop
    #: axes) the kernel body reads.  The athread backend grows its LDM
    #: tiles by this ring, and ``repro.analysis`` cross-checks it
    #: against the extracted footprint and the domain halo width.
    stencil_halo: int = 0

    def __call__(self, *idx: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError(
            f"{type(self).__name__} must implement the elementwise operator()"
        )


def _make_preset(functor_type: type, kind: str) -> Callable:
    """Build the preset function for a functor class.

    The preset is what the registration macro generates in C++: a plain
    function the Athread runtime can call, which internally invokes the
    functor's overloaded ``operator()`` over the tile it is handed.
    """

    if kind == "for":
        def preset(functor, slices: Sequence[slice]) -> None:
            apply = getattr(functor, "apply", None)
            if apply is not None:
                apply(tuple(slices))
                return
            _loop_elementwise(functor, slices)
        preset.__name__ = f"preset_for_{functor_type.__name__}"
        # Sealed launch plans may call ``functor.apply`` directly when the
        # registered callback is this generated trampoline (same effect,
        # one less indirection per tile); custom callbacks lack the mark.
        preset.generated_trampoline = True
        return preset

    def preset_reduce(functor, slices: Sequence[slice], combine):
        reduce_apply = getattr(functor, "reduce_apply", None)
        if reduce_apply is not None:
            return reduce_apply(tuple(slices))
        return _loop_reduce(functor, slices, combine)

    preset_reduce.__name__ = f"preset_reduce_{functor_type.__name__}"
    return preset_reduce


def _loop_elementwise(functor, slices: Sequence[slice]) -> None:
    """Reference elementwise sweep of a tile (row-major order)."""
    # Any empty range means zero iteration points: short-circuit before
    # dispatch so a huge outer range over an empty inner one costs
    # nothing (mirrors the parallel_scan empty-range fix).
    for s in slices:
        if s.stop <= s.start:
            return
    _recurse_for(functor, slices, ())


def _recurse_for(functor, slices: Sequence[slice], idx: Tuple[int, ...]) -> None:
    if not slices:
        functor(*idx)
        return
    head, rest = slices[0], slices[1:]
    if head.stop <= head.start:
        return
    for i in range(head.start, head.stop):
        _recurse_for(functor, rest, idx + (i,))


def _loop_reduce(functor, slices: Sequence[slice], combine):
    acc = None
    for idx in _iter_indices(slices):
        val = functor.reduce(*idx) if hasattr(functor, "reduce") else functor(*idx)
        acc = val if acc is None else combine(acc, val)
    return acc


def _iter_indices(slices: Sequence[slice]):
    if not slices:
        yield ()
        return
    head, rest = slices[0], slices[1:]
    for i in range(head.start, head.stop):
        for tail in _iter_indices(rest):
            yield (i,) + tail


def kokkos_register_for(name: str, ndim: int, registry=None) -> Callable[[type], type]:
    """Decorator form of ``KOKKOS_REGISTER_FOR_<ndim>D(name, Functor)``.

    Examples
    --------
    >>> @kokkos_register_for("my_axpy", ndim=1)
    ... class FunctorAXPY:
    ...     def __init__(self, a, x, y):
    ...         self.a, self.x, self.y = a, x, y
    ...     def __call__(self, i):
    ...         self.y[i] = self.a * self.x[i] + self.y[i]
    """

    def decorate(functor_type: type) -> type:
        reg = registry if registry is not None else default_registry()
        reg.register(
            RegistryEntry(
                name=name,
                functor_type=functor_type,
                kind="for",
                ndim=ndim,
                callback=_make_preset(functor_type, "for"),
            )
        )
        return functor_type

    return decorate


def kokkos_register_reduce(name: str, ndim: int, registry=None) -> Callable[[type], type]:
    """Decorator form of ``KOKKOS_REGISTER_REDUCE_<ndim>D(name, Functor)``."""

    def decorate(functor_type: type) -> type:
        reg = registry if registry is not None else default_registry()
        reg.register(
            RegistryEntry(
                name=name,
                functor_type=functor_type,
                kind="reduce",
                ndim=ndim,
                callback=_make_preset(functor_type, "reduce"),
            )
        )
        return functor_type

    return decorate


def register_functor_instance(
    functor, kind: str, ndim: int, name: Optional[str] = None, registry=None
) -> RegistryEntry:
    """Imperatively register ``type(functor)`` (macro call form)."""
    reg = registry if registry is not None else default_registry()
    ftype = type(functor)
    return reg.register(
        RegistryEntry(
            name=name or ftype.__name__,
            functor_type=ftype,
            kind=kind,
            ndim=ndim,
            callback=_make_preset(ftype, kind),
        )
    )
