"""Per-kernel instrumentation counters.

The paper gathers floating-point statistics with a "job-level performance
monitoring and analysis toolchain" on the new Sunway system (§VI-C).  This
module is the analog: every backend records, per kernel label, the number
of launches, tiles executed, grid points visited, declared floating-point
operations and bytes moved, plus a process-wide transfer ledger for
host<->device copies (heterogeneous daily memory copies are part of the
timed region in the paper) and Athread DMA traffic.

These measured counts are what the machine performance model
(:mod:`repro.perfmodel`) multiplies by hardware specs to predict kernel
times on the paper's four systems.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class KernelStats:
    """Accumulated execution statistics for one kernel label."""

    label: str
    launches: int = 0
    tiles: int = 0
    points: int = 0
    flops: float = 0.0
    bytes: float = 0.0

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte moved (0 when no bytes were recorded)."""
        return self.flops / self.bytes if self.bytes else 0.0


@dataclass
class TransferLedger:
    """Bytes moved across memory-space boundaries.

    ``tracer`` is an optional :class:`repro.trace.Tracer` (wired in by
    the owning :class:`~repro.kokkos.context.ExecutionContext`); while
    it is enabled, every recorded transfer also lands on the timeline
    as an instant event carrying its byte count.
    """

    h2d_bytes: float = 0.0
    h2d_count: int = 0
    d2h_bytes: float = 0.0
    d2h_count: int = 0
    dma_bytes: float = 0.0
    dma_count: int = 0
    tracer: Optional[object] = field(default=None, repr=False, compare=False)

    def record_h2d(self, nbytes: float) -> None:
        self.h2d_bytes += nbytes
        self.h2d_count += 1
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.instant("H2D", cat="xfer", bytes=float(nbytes))

    def record_d2h(self, nbytes: float) -> None:
        self.d2h_bytes += nbytes
        self.d2h_count += 1
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.instant("D2H", cat="xfer", bytes=float(nbytes))

    def record_dma(self, nbytes: float) -> None:
        self.dma_bytes += nbytes
        self.dma_count += 1
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.instant("DMA", cat="xfer", bytes=float(nbytes))

    # Ledgers cross process boundaries in worker exit reports; the
    # tracer back-reference is rank-local wiring and does not travel.
    def __getstate__(self) -> Dict[str, object]:
        state = self.__dict__.copy()
        state["tracer"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)


@dataclass
class WorkspaceStats:
    """Scratch-arena traffic: requests served vs arrays actually allocated.

    A warm arena serves every request from its pool (``allocations``
    stays flat while ``requests`` grows); a disabled arena allocates on
    every request.  The ratio is the measurable allocation win of the
    ``out=``-rewritten apply bodies.
    """

    requests: int = 0
    allocations: int = 0
    bytes_served: float = 0.0
    bytes_allocated: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served without allocating."""
        if not self.requests:
            return 0.0
        return 1.0 - self.allocations / self.requests


@dataclass
class Instrumentation:
    """A container of kernel statistics and the transfer ledger."""

    kernels: Dict[str, KernelStats] = field(default_factory=dict)
    transfers: TransferLedger = field(default_factory=TransferLedger)
    workspace: WorkspaceStats = field(default_factory=WorkspaceStats)
    enabled: bool = True
    # One lock covers every mutating recorder: kernel launches arrive
    # from concurrently stepping model instances that share a ledger
    # (the default-context shim), workspace takes from OpenMP tiles.
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def kernel(self, label: str) -> KernelStats:
        """Get (creating if needed) the stats record for ``label``."""
        stats = self.kernels.get(label)
        if stats is None:
            stats = self.kernels[label] = KernelStats(label)
        return stats

    def record_launch(
        self,
        label: str,
        *,
        points: int,
        tiles: int = 1,
        flops_per_point: float = 0.0,
        bytes_per_point: float = 0.0,
    ) -> None:
        """Record one kernel launch touching ``points`` grid points."""
        if not self.enabled:
            return
        with self._lock:
            stats = self.kernel(label)
            stats.launches += 1
            stats.tiles += tiles
            stats.points += points
            stats.flops += flops_per_point * points
            stats.bytes += bytes_per_point * points

    def record_workspace_take(self, nbytes: float, allocated: bool) -> None:
        """Record one scratch-arena request (thread-safe: OpenMP tiles)."""
        if not self.enabled:
            return
        with self._lock:
            ws = self.workspace
            ws.requests += 1
            ws.bytes_served += nbytes
            if allocated:
                ws.allocations += 1
                ws.bytes_allocated += nbytes

    @property
    def total_flops(self) -> float:
        return sum(k.flops for k in self.kernels.values())

    @property
    def total_bytes(self) -> float:
        return sum(k.bytes for k in self.kernels.values())

    @property
    def total_launches(self) -> int:
        return sum(k.launches for k in self.kernels.values())

    @property
    def total_points(self) -> int:
        """Grid points visited across all kernels — the per-rank load
        proxy :func:`repro.perfmodel.aggregate.load_imbalance` uses."""
        return sum(k.points for k in self.kernels.values())

    def merge_from(self, other: "Instrumentation") -> "Instrumentation":
        """Accumulate ``other``'s counters into this ledger.

        Used by :func:`repro.perfmodel.aggregate.aggregate` to fold
        per-rank ledgers into the job-level view (§VI-C); ``other`` is
        left untouched.
        """
        with self._lock:
            for label, k in other.kernels.items():
                mine = self.kernel(label)
                mine.launches += k.launches
                mine.tiles += k.tiles
                mine.points += k.points
                mine.flops += k.flops
                mine.bytes += k.bytes
            t, mt = other.transfers, self.transfers
            mt.h2d_bytes += t.h2d_bytes
            mt.h2d_count += t.h2d_count
            mt.d2h_bytes += t.d2h_bytes
            mt.d2h_count += t.d2h_count
            mt.dma_bytes += t.dma_bytes
            mt.dma_count += t.dma_count
            w, mw = other.workspace, self.workspace
            mw.requests += w.requests
            mw.allocations += w.allocations
            mw.bytes_served += w.bytes_served
            mw.bytes_allocated += w.bytes_allocated
        return self

    # Instrumentation rides home in process-mode worker reports; the
    # lock is process-local and is rebuilt on unpickle.
    def __getstate__(self) -> Dict[str, object]:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def reset(self) -> None:
        """Clear all statistics (the ledger and arena counters included)."""
        self.kernels.clear()
        self.transfers = TransferLedger(tracer=self.transfers.tracer)
        self.workspace = WorkspaceStats()

    def report(self) -> str:
        """Render a text table of all kernels sorted by byte traffic."""
        rows = sorted(self.kernels.values(), key=lambda k: -k.bytes)
        lines = [
            f"{'kernel':<40s} {'launches':>9s} {'points':>12s} "
            f"{'Mflops':>10s} {'MB':>10s} {'AI':>7s}"
        ]
        for k in rows:
            lines.append(
                f"{k.label:<40s} {k.launches:>9d} {k.points:>12d} "
                f"{k.flops / 1e6:>10.2f} {k.bytes / 1e6:>10.2f} "
                f"{k.arithmetic_intensity:>7.3f}"
            )
        return "\n".join(lines)


#: Process-wide instrumentation used by default by all backends.
GLOBAL_INSTRUMENTATION = Instrumentation()


def get_instrumentation(inst: Optional[Instrumentation] = None) -> Instrumentation:
    """Resolve ``inst`` to an :class:`Instrumentation`.

    Accepts ``None`` (the process-wide default), an ``Instrumentation``,
    or any owner exposing one through an ``inst`` attribute — notably an
    :class:`~repro.kokkos.context.ExecutionContext`, so context-aware
    call sites (``deep_copy``, ``DualView``, backends) take either form.
    """
    if inst is None:
        return GLOBAL_INSTRUMENTATION
    if isinstance(inst, Instrumentation):
        return inst
    owner = getattr(inst, "inst", None)
    if isinstance(owner, Instrumentation):
        return owner
    return inst
