"""``Workspace``: a keyed scratch-array arena for kernel apply bodies.

The vectorised ``apply`` bodies of the hottest kernels (tracer fluxes,
FCT limiter, baroclinic tendency, vertical solves) historically built
dozens of NumPy temporaries per tile, so small-grid throughput was
allocator-bound rather than bandwidth-bound — the Python analogue of
the per-launch spawn/join overhead the paper's registry redesign kills
on the CPEs (§V-B).  A :class:`Workspace` hands out *preallocated*
scratch arrays keyed by ``(key, shape, dtype)``; after the first step
every ``take`` is a dictionary hit and the apply bodies run with zero
steady-state allocations.

Contract
--------
* The returned buffer's contents are **undefined** (like ``np.empty``)
  unless ``fill=`` is given; callers must fully overwrite it, typically
  through ``out=``-style ufunc calls.
* Buffers are only valid until the next ``take`` with the same key —
  within one apply body use distinct keys for live temporaries.
* Pools are **per thread**, so concurrent tiles of the same functor on
  the OpenMP backend never share a buffer.  Unlike the historical
  ``threading.local`` pools, the per-thread pools are held in an
  ordinary dict keyed by thread id so the *owner* can enumerate and
  drop them: :meth:`release` frees every pool at once, and an
  :class:`~repro.kokkos.context.ExecutionContext` calls it from
  ``close()`` so SimWorld rank arenas never outlive their rank.

Every ``take`` is counted in :class:`~.instrument.Instrumentation`
(``requests`` vs actual ``allocations``), which is how the benchmark
and the allocation-regression test measure the win.  A disabled
workspace (``enabled=False``) allocates fresh on every request — the
eager-allocation baseline with identical numerics.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .instrument import Instrumentation, get_instrumentation

ShapeLike = Union[int, Tuple[int, ...]]


class Workspace:
    """Arena of reusable scratch arrays keyed by ``(key, shape, dtype)``."""

    def __init__(self, enabled: bool = True,
                 inst: Optional[Instrumentation] = None) -> None:
        self.enabled = enabled
        self.inst = get_instrumentation(inst)
        # thread id -> pool.  Kept in a plain dict (not threading.local)
        # so release() can drop buffers owned by threads that no longer
        # exist — SimWorld rank threads die after every run, and
        # thread-local pools used to pin their arenas until the
        # Workspace itself was collected.
        self._pools: Dict[int, Dict[tuple, np.ndarray]] = {}
        self._pools_lock = threading.Lock()
        self._released = False

    def _pool(self) -> Dict[tuple, np.ndarray]:
        ident = threading.get_ident()
        pool = self._pools.get(ident)
        if pool is None:
            with self._pools_lock:
                pool = self._pools.setdefault(ident, {})
        return pool

    def take(self, key: str, shape: ShapeLike, dtype=np.float64,
             fill=None) -> np.ndarray:
        """Return a scratch array for ``key`` with the requested geometry.

        The same ``(key, shape, dtype)`` on the same thread returns the
        same buffer every time once the arena is warm.  The warm path is
        deliberately skinny — tiled backends issue tens of thousands of
        takes per step, so it keys on the caller's ``shape``/``dtype``
        objects verbatim (each call site passes a consistent form) and
        bumps the request counters without taking the stats lock; only
        the rare allocation goes through the locked recorder, so the
        ``allocations`` counter the tests pin stays exact.
        """
        if type(shape) is not tuple:
            shape = (int(shape),) if isinstance(shape, (int, np.integer)) \
                else tuple(shape)
        if not self.enabled or self._released:
            arr = np.empty(shape, np.dtype(dtype))
            self.inst.record_workspace_take(arr.nbytes, allocated=True)
        else:
            pool = self._pool()
            arr = pool.get((key, shape, dtype))
            if arr is None:
                arr = pool[(key, shape, dtype)] = np.empty(shape,
                                                           np.dtype(dtype))
                self.inst.record_workspace_take(arr.nbytes, allocated=True)
            else:
                inst = self.inst
                if inst.enabled:
                    ws = inst.workspace
                    ws.requests += 1
                    ws.bytes_served += arr.nbytes
        if fill is not None:
            arr[...] = fill
        return arr

    def clear(self) -> None:
        """Drop this thread's pooled buffers (tests / memory pressure)."""
        with self._pools_lock:
            self._pools.pop(threading.get_ident(), None)

    def release(self) -> None:
        """Drop *every* thread's pooled buffers and stop pooling.

        Called by the owning context's ``close()``.  Subsequent takes
        still work (eager allocation, identical numerics) so teardown
        order between a context and stragglers using its domain never
        matters; they just stop being cached.
        """
        with self._pools_lock:
            self._pools.clear()
            self._released = True

    @property
    def released(self) -> bool:
        return self._released

    def pooled_nbytes(self) -> int:
        """Total bytes currently held across all thread pools."""
        with self._pools_lock:
            return sum(arr.nbytes for pool in self._pools.values()
                       for arr in pool.values())


def null_workspace() -> Workspace:
    """The default context's disabled workspace (deprecated shim).

    Kernels reach their workspace through ``LocalDomain.scratch()``;
    when no model wired an arena in, this keeps the rewritten ``out=``
    bodies working with per-call allocations (bitwise identical
    numerics, counted against the default context's instrumentation).
    New code should use ``context.null_workspace`` instead so the
    counts land in the owning rank's ledger.
    """
    from .context import default_context

    return default_context().null_workspace
