"""``repro.kokkos`` — the performance-portability layer.

A Python analog of Kokkos as extended by the paper: views with layouts
and memory spaces, range/MD-range policies, parallel dispatch, and —
this work's contribution — an Athread backend for the Sunway SW26010 Pro
built on functor registration + callback dispatch, LDM tiling (Eq. 1–2)
and DMA accounting.

Typical use::

    from repro import kokkos as kk

    kk.initialize("athread")
    x = kk.View("x", 1000)
    y = kk.View("y", 1000)

    @kk.kokkos_register_for("my_axpy", ndim=1)
    class AXPY:
        flops_per_point = 2.0
        bytes_per_point = 24.0
        def __init__(self, a, x, y):
            self.a, self.x, self.y = a, x, y
        def __call__(self, i):
            self.y[i] = self.a * self.x[i] + self.y[i]
        def apply(self, slices):
            s, = slices
            self.y.data[s] += self.a * self.x.data[s]

    kk.parallel_for("axpy", kk.RangePolicy(0, 1000), AXPY(2.0, x, y))
"""

from .spaces import (
    DeviceSpace,
    HostSpace,
    LDMSpace,
    Layout,
    LayoutLeft,
    LayoutRight,
    MemorySpace,
)
from .dualview import DualView
from .view import (
    View,
    create_device_view,
    create_mirror_view,
    deep_copy,
    kernel_context,
    subview,
)
from .policy import MDRangePolicy, RangePolicy, iter_tiles, tiles_per_cpe, total_tiles
from .team import TeamMember, TeamPolicy, parallel_for_team, parallel_reduce_team
from .functor import (
    Functor,
    kokkos_register_for,
    kokkos_register_reduce,
    register_functor_instance,
)
from .registry import (
    GLOBAL_REGISTRY,
    DictRegistry,
    LinkedListRegistry,
    RegistryEntry,
    default_registry,
)
from .backends import (
    AthreadBackend,
    DeviceBackend,
    ExecutionSpace,
    Max,
    Min,
    OpenMPBackend,
    Prod,
    Reducer,
    SerialBackend,
    Sum,
    make_backend,
)
from .graph import (
    FusedStencilFunctor,
    FusedTileFunctor,
    HostEffects,
    HostNode,
    KernelNode,
    LaunchGraph,
)
from .jit import JitCache, numba_available, resolve_jit
from .instrument import (
    GLOBAL_INSTRUMENTATION,
    Instrumentation,
    KernelStats,
    WorkspaceStats,
)
from .workspace import Workspace, null_workspace
from .context import ContextRegistry, ExecutionContext, default_context
from .ldm import DMAEngine, LDMAllocator, SW26010_LDM_BYTES, double_buffered_time
from .parallel import (
    default_space,
    fence,
    finalize,
    initialize,
    is_initialized,
    parallel_for,
    parallel_reduce,
    parallel_scan,
    scoped_space,
    set_default_space,
)

__all__ = [
    # spaces / layout
    "MemorySpace", "HostSpace", "DeviceSpace", "LDMSpace",
    "Layout", "LayoutLeft", "LayoutRight",
    # views
    "View", "DualView", "create_mirror_view", "create_device_view", "deep_copy",
    "subview", "kernel_context",
    # policies
    "RangePolicy", "MDRangePolicy", "iter_tiles", "total_tiles", "tiles_per_cpe",
    "TeamPolicy", "TeamMember", "parallel_for_team", "parallel_reduce_team",
    # functors / registry
    "Functor", "kokkos_register_for", "kokkos_register_reduce",
    "register_functor_instance", "GLOBAL_REGISTRY", "LinkedListRegistry",
    "DictRegistry", "RegistryEntry", "default_registry",
    # execution contexts
    "ExecutionContext", "ContextRegistry", "default_context",
    # backends
    "ExecutionSpace", "SerialBackend", "OpenMPBackend", "AthreadBackend",
    "DeviceBackend", "make_backend", "Reducer", "Sum", "Prod", "Min", "Max",
    # graph capture / workspace arena
    "LaunchGraph", "KernelNode", "HostNode", "HostEffects", "FusedTileFunctor",
    "FusedStencilFunctor", "JitCache", "numba_available", "resolve_jit",
    "Workspace", "null_workspace",
    # instrumentation / ldm
    "Instrumentation", "KernelStats", "WorkspaceStats", "GLOBAL_INSTRUMENTATION",
    "LDMAllocator", "DMAEngine", "SW26010_LDM_BYTES", "double_buffered_time",
    # dispatch
    "initialize", "finalize", "is_initialized", "default_space",
    "set_default_space", "scoped_space", "parallel_for", "parallel_reduce",
    "parallel_scan", "fence",
]
