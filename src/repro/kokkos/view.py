"""``View``: the multi-dimensional array abstraction of the portability layer.

A :class:`View` wraps a NumPy array and carries the Kokkos metadata that
matters for portability: a label, a memory space and a layout.  The key
behavioural contract reproduced from Kokkos:

* Views in :data:`~repro.kokkos.spaces.DeviceSpace` may **not** be
  dereferenced by host code — only inside a kernel body executed by the
  device backend (which sets a thread-local "in kernel" flag), or through
  a host mirror obtained with :func:`create_mirror_view` followed by
  :func:`deep_copy`.
* ``deep_copy`` across spaces records host<->device transfer bytes in the
  instrumentation ledger; these are the "daily memory copies" the paper
  includes in its timed region (§VI-C).
* The raw buffer is reachable via :attr:`View.data` — the paper's
  ``View.data`` interface that Athread DMA helpers use (§V-B).
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import MemorySpaceError
from .instrument import Instrumentation, get_instrumentation
from .spaces import (
    HostSpace,
    Layout,
    LayoutLeft,
    LayoutRight,
    MemorySpace,
)

_TLS = threading.local()


def _in_kernel() -> bool:
    return getattr(_TLS, "in_kernel", 0) > 0


class kernel_context:
    """Context manager marking that device-space access is legal.

    Backends that own non-host-accessible memory (the simulated CUDA/HIP
    device) enter this context around functor execution, exactly as real
    device code is the only place device pointers may be dereferenced.
    """

    def __enter__(self) -> "kernel_context":
        _TLS.in_kernel = getattr(_TLS, "in_kernel", 0) + 1
        return self

    def __exit__(self, *exc) -> None:
        _TLS.in_kernel -= 1


ShapeLike = Union[int, Sequence[int]]


class View:
    """An N-dimensional array with a label, layout and memory space.

    Parameters
    ----------
    label:
        Human-readable name (shows up in instrumentation and errors).
    shape:
        Dimensions of the view.  An integer means a 1-D view.
    dtype:
        NumPy dtype; the paper reports all results in double precision,
        so the default is ``float64``.
    layout:
        :data:`LayoutRight` (C order) or :data:`LayoutLeft` (Fortran).
    space:
        Memory space the allocation lives in.
    data:
        Optional existing ndarray to wrap (it is used as-is when its
        order matches the layout, otherwise copied).
    """

    __slots__ = ("label", "space", "layout", "_array", "_host_ok")

    def __init__(
        self,
        label: str,
        shape: Optional[ShapeLike] = None,
        dtype=np.float64,
        layout: Layout = LayoutRight,
        space: MemorySpace = HostSpace,
        data: Optional[np.ndarray] = None,
    ) -> None:
        self.label = label
        self.space = space
        self.layout = layout
        # memory space is fixed for the view's lifetime, so the access
        # policing in ``data`` can branch on one cached bool (the hot
        # apply bodies read ``.data`` tens of thousands of times a step)
        self._host_ok = space.host_accessible
        if data is not None:
            arr = np.asarray(data, dtype=dtype if dtype is not None else None)
            order = layout.numpy_order
            if not _matches_order(arr, order):
                arr = np.array(arr, order=order)  # copy into requested layout
            self._array = arr
        else:
            if shape is None:
                raise ValueError(f"View {label!r}: need shape or data")
            if isinstance(shape, (int, np.integer)):
                shape = (int(shape),)
            self._array = np.zeros(tuple(int(s) for s in shape), dtype=dtype,
                                   order=layout.numpy_order)

    # -- metadata ----------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._array.shape

    @property
    def ndim(self) -> int:
        return self._array.ndim

    @property
    def size(self) -> int:
        return self._array.size

    @property
    def dtype(self):
        return self._array.dtype

    @property
    def nbytes(self) -> int:
        return self._array.nbytes

    def extent(self, dim: int) -> int:
        """Kokkos-style extent query."""
        return self._array.shape[dim]

    # -- data access -------------------------------------------------------

    def _check_access(self) -> None:
        if not self.space.host_accessible and not _in_kernel():
            raise MemorySpaceError(
                f"View {self.label!r} lives in {self.space.name} space and is "
                "not host accessible; use create_mirror_view()/deep_copy() or "
                "access it inside a kernel"
            )

    @property
    def data(self) -> np.ndarray:
        """The underlying ndarray (the paper's ``View.data`` interface).

        Access is policed by memory space: device views raise
        :class:`MemorySpaceError` outside kernel execution.
        """
        if self._host_ok:
            return self._array
        self._check_access()
        return self._array

    @property
    def raw(self) -> np.ndarray:
        """Unpoliced buffer access, for backends and deep_copy only."""
        return self._array

    def rebind(self, array: np.ndarray) -> None:
        """Point this view at a different buffer of identical geometry.

        This is the "rebindable view slot" that lets a captured
        :class:`~repro.kokkos.graph.LaunchGraph` survive leapfrog
        old/cur/new rotation: the functors bound at capture time keep
        referencing the *same* ``View`` objects while the rotation swaps
        the underlying arrays beneath them, so no re-capture is needed.
        """
        if array.shape != self._array.shape or array.dtype != self._array.dtype:
            raise ValueError(
                f"View {self.label!r}: rebind requires identical geometry, "
                f"got {array.shape}/{array.dtype} for "
                f"{self._array.shape}/{self._array.dtype}"
            )
        self._array = array

    def __getitem__(self, idx):
        self._check_access()
        return self._array[idx]

    def __setitem__(self, idx, value) -> None:
        self._check_access()
        self._array[idx] = value

    def fill(self, value) -> None:
        """Set every element to ``value`` (host-policed)."""
        self._check_access()
        self._array[...] = value

    def __array__(self, dtype=None, copy=None):
        self._check_access()
        if dtype is not None:
            return self._array.astype(dtype)
        return self._array

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"View({self.label!r}, shape={self.shape}, dtype={self.dtype}, "
            f"layout={self.layout.name}, space={self.space.name})"
        )


def _matches_order(arr: np.ndarray, order: str) -> bool:
    if arr.ndim <= 1:
        return arr.flags["C_CONTIGUOUS"] or arr.flags["F_CONTIGUOUS"]
    if order == "C":
        return arr.flags["C_CONTIGUOUS"]
    return arr.flags["F_CONTIGUOUS"]


def create_mirror_view(view: View, space: MemorySpace = HostSpace) -> View:
    """Return a view of the same shape in ``space``.

    Like Kokkos, when ``view`` is already in a compatible (host-accessible
    vs not) space the same view is returned — no allocation, no copy.
    Otherwise a fresh, *uninitialised-by-copy* view is created; pair it
    with :func:`deep_copy`.
    """
    if view.space.host_accessible == space.host_accessible:
        return view
    return View(
        f"{view.label}_mirror",
        shape=view.shape,
        dtype=view.dtype,
        layout=view.layout,
        space=space,
    )


def create_device_view(view: View, space: MemorySpace) -> View:
    """Create a device-resident copy target for a host view."""
    return View(
        f"{view.label}_dev",
        shape=view.shape,
        dtype=view.dtype,
        layout=view.layout,
        space=space,
    )


def deep_copy(
    dst: View,
    src: Union[View, np.ndarray, float, int],
    inst: Optional[Instrumentation] = None,
) -> None:
    """Copy ``src`` into ``dst``, honouring memory spaces.

    Copies that cross the host/device boundary are recorded in the
    instrumentation transfer ledger as H2D or D2H traffic.
    """
    ledger = get_instrumentation(inst).transfers
    if isinstance(src, View):
        if dst.shape != src.shape:
            raise ValueError(
                f"deep_copy shape mismatch: {dst.label}{dst.shape} <- "
                f"{src.label}{src.shape}"
            )
        dst.raw[...] = src.raw
        if dst.space.host_accessible and not src.space.host_accessible:
            ledger.record_d2h(src.nbytes)
        elif src.space.host_accessible and not dst.space.host_accessible:
            ledger.record_h2d(dst.nbytes)
    elif isinstance(src, np.ndarray):
        dst.raw[...] = src
        if not dst.space.host_accessible:
            ledger.record_h2d(dst.nbytes)
    else:  # scalar fill, like Kokkos' deep_copy(view, value)
        dst.raw[...] = src


def subview(view: View, *slices) -> View:
    """A non-owning slice of ``view`` sharing the same buffer and space."""
    out = View.__new__(View)
    out.label = f"{view.label}_sub"
    out.space = view.space
    out.layout = view.layout
    out._host_ok = view.space.host_accessible
    out._array = view.raw[slices if len(slices) != 1 else slices[0]]
    return out


def views_nbytes(views: Iterable[View]) -> int:
    """Total bytes across ``views`` (LDM working-set estimation helper)."""
    return sum(v.nbytes for v in views)
