"""``ExecutionContext``: per-rank ownership of the portability layer.

The paper's measurement story depends on per-rank attribution — its
job-level performance monitoring toolchain on the new Sunway system
(§VI-C) and the load-balance analysis only make sense when every rank's
kernel counts and traffic are separable.  Historically this layer
funnelled every rank through process-wide singletons
(``GLOBAL_INSTRUMENTATION``, ``GLOBAL_REGISTRY``, module-level
workspace state), so concurrent model instances commingled their
ledgers and SimWorld rank arenas leaked across runs.

An :class:`ExecutionContext` is the explicit session object that owns
one rank's copy of everything that used to be global:

* the backend instance (``.space``) and its :class:`Instrumentation`
  ledger (``.inst``) — kernel launches, H2D/D2H/DMA transfers and
  workspace counters all land in the owning context;
* a functor registry (``.registry``) — a :class:`ContextRegistry` whose
  misses fall back to the process-wide registration table, so
  import-time ``@kokkos_register_for`` decorators keep working while
  lookup state (LDM cache order, comparison counters) stays per rank;
* the workspace arenas it handed out (``make_workspace``), released on
  :meth:`close` so rank threads never pin scratch memory after exit;
* the per-rank traffic ledger (``.traffic``) the simulated MPI endpoint
  records into, giving true per-rank message statistics alongside the
  world's shared ledger;
* a graph / launch-plan cache (``.graph_cache``) and a
  :class:`~repro.timing.TimerRegistry`.

Two models on different backends, each with its own context, can step
concurrently in one process with bitwise-identical results and disjoint
ledgers; :func:`repro.perfmodel.aggregate.aggregate` merges the
per-rank ledgers back into the single job-level view.

:func:`default_context` is the deprecated compatibility shim: one
process-wide context wrapping the old globals, used when code does not
pass a context explicitly.  Library code should take the context as an
argument; the ``global-state`` kernelcheck rule flags direct singleton
reads outside this module and the shim's home modules.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from typing import Dict, List, Optional

from ..timing import TimerRegistry
from ..trace import Tracer
from .backends import ExecutionSpace, make_backend
from .instrument import GLOBAL_INSTRUMENTATION, Instrumentation
from .registry import GLOBAL_REGISTRY, LinkedListRegistry, RegistryEntry
from .workspace import Workspace


class ContextRegistry(LinkedListRegistry):
    """A per-context functor registry with global fallback.

    Uses the paper's configuration (linked list + LDM hot-entry cache +
    SIMD matching) like the process-wide table, but owns its own LRU
    order and ``comparisons`` counter so concurrent contexts neither
    race on cache mutation nor skew each other's matching statistics.
    A lookup miss consults the ``base`` table (where import-time
    registration decorators put entries), caches the entry locally and
    returns it; an entry missing from both raises the same
    ``RegistrationError`` a real unregistered Athread launch hits.
    """

    def __init__(self, base: Optional[LinkedListRegistry] = None,
                 **kwargs) -> None:
        kwargs.setdefault("ldm_cache", True)
        kwargs.setdefault("simd_width", 8)
        super().__init__(**kwargs)
        self._base = base if base is not None else GLOBAL_REGISTRY

    def lookup(self, functor_type: type) -> RegistryEntry:
        from ..errors import RegistrationError

        try:
            return super().lookup(functor_type)
        except RegistrationError:
            entry = self._base.lookup(functor_type)  # raises if truly absent
            self.register(entry)
            return entry


class ExecutionContext:
    """One rank's session: backend, ledgers, arenas, graphs, timers.

    Parameters
    ----------
    backend:
        Backend name (``serial``/``openmp``/``athread``/``cuda``/
        ``hip``), an already-built :class:`ExecutionSpace` (adopted
        as-is, keeping its instrumentation), or ``None`` — in which
        case ``.space`` resolves lazily to the process default space
        (the :func:`default_context` shim configuration).
    inst / registry / timers / tracer:
        Override the freshly-created per-context instances.
    rank:
        The owning rank (labels ledgers in multi-rank aggregation).
    trace:
        Enable span tracing immediately (see :meth:`enable_tracing`).
    backend_kwargs:
        Forwarded to :func:`make_backend` for named backends.
    """

    _ids = itertools.count()
    #: Every open context, weakly held.  The serving layer's leak audit
    #: (and its tests) ask "did that failed job leave a live context
    #: behind?" — ``close()`` discards the entry, garbage collection
    #: drops unclosed strays, so the set is exactly the open population.
    _live: "weakref.WeakSet[ExecutionContext]" = weakref.WeakSet()
    _live_lock = threading.Lock()

    def __init__(
        self,
        backend: Optional[object] = "serial",
        *,
        inst: Optional[Instrumentation] = None,
        registry: Optional[LinkedListRegistry] = None,
        timers: Optional[TimerRegistry] = None,
        tracer: Optional[Tracer] = None,
        rank: int = 0,
        name: Optional[str] = None,
        trace: bool = False,
        **backend_kwargs,
    ) -> None:
        self.rank = int(rank)
        self.name = name if name is not None else f"ctx{next(self._ids)}"
        self.registry = registry if registry is not None else ContextRegistry()
        self.timers = timers if timers is not None else TimerRegistry()
        #: Per-rank span tracer (disabled — and free — until
        #: :meth:`enable_tracing` wires it into the owned recorders).
        self.tracer = tracer if tracer is not None else Tracer(
            rank=self.rank, name=f"{self.name} (rank {self.rank})")
        #: graph/launch-plan cache: scope key -> {variant key -> graph}
        self.graph_cache: Dict[object, dict] = {}
        self.closed = False
        self._workspaces: List[Workspace] = []
        self._null_ws: Optional[Workspace] = None
        self._traffic = None
        self._owns_space = False
        self._space: Optional[ExecutionSpace] = None
        if backend is None:
            self.inst = inst if inst is not None else Instrumentation()
        elif isinstance(backend, ExecutionSpace):
            # adopt: the space keeps its ledger; the context reports it
            self._space = backend
            self.inst = inst if inst is not None else backend.inst
        else:
            self.inst = inst if inst is not None else Instrumentation()
            kwargs = dict(backend_kwargs)
            if str(backend).lower() == "athread":
                kwargs.setdefault("registry", self.registry)
            self._space = make_backend(backend, inst=self.inst, **kwargs)
            self._owns_space = True
        if trace:
            self.enable_tracing()
        with ExecutionContext._live_lock:
            ExecutionContext._live.add(self)

    @classmethod
    def live_contexts(cls) -> "List[ExecutionContext]":
        """All contexts constructed but not yet closed (leak audit)."""
        with cls._live_lock:
            return [ctx for ctx in cls._live if not ctx.closed]

    @classmethod
    def live_count(cls) -> int:
        """Number of open contexts (see :meth:`live_contexts`)."""
        return len(cls.live_contexts())

    # -- tracing -------------------------------------------------------------

    def enable_tracing(self) -> Tracer:
        """Switch span tracing on and wire the tracer into every owned
        recorder: the backend dispatch path (kernel spans), the GPTL
        timers (step/phase spans), the host<->device transfer ledger and
        the Athread DMA engine (instant events).  Idempotent; the
        dispatch path keeps its zero-overhead guard while disabled.

        A context built with ``backend=None`` (the default-context shim)
        wires only its timers and ledger — the process default space is
        shared and stays untraced.
        """
        tr = self.tracer
        tr.enabled = True
        self.timers.tracer = tr
        self.inst.transfers.tracer = tr
        if self._space is not None:
            self._space.tracer = tr
            dma = getattr(self._space, "dma", None)
            if dma is not None:
                dma.tracer = tr
        return tr

    def disable_tracing(self) -> None:
        """Stop recording (hooks stay wired; re-enable is one flag)."""
        self.tracer.enabled = False

    # -- ownership accessors -----------------------------------------------

    @property
    def space(self) -> ExecutionSpace:
        """The context's execution space.

        A context built with ``backend=None`` (the default-context shim)
        delegates to the process default space at access time, so
        ``initialize()``-style code keeps working unchanged.
        """
        if self._space is not None:
            return self._space
        from .parallel import default_space

        return default_space()

    @classmethod
    def adopt(cls, space: ExecutionSpace, *, rank: int = 0,
              owns_space: bool = False, **kwargs) -> "ExecutionContext":
        """Wrap an existing backend in a context.

        The backend's instrumentation is preserved, so a default-built
        backend (recording into the process-wide ledger) behaves exactly
        as before contexts existed — the single-rank compatibility path.
        """
        ctx = cls(backend=space, rank=rank, **kwargs)
        ctx._owns_space = owns_space
        return ctx

    @property
    def jit_cache(self):
        """Per-context cache of compiled launch sweeps.

        Lives on the owned space (where :meth:`LaunchGraph.seal` looks
        it up), created lazily; because every context owns its space,
        ranks never share compilation state.  Cleared on :meth:`close`.
        """
        from .jit import JitCache

        space = self.space
        cache = getattr(space, "jit_cache", None)
        if cache is None:
            cache = space.jit_cache = JitCache()
        return cache

    @property
    def traffic(self):
        """Per-rank message ledger (created lazily; see SimComm.ledger)."""
        if self._traffic is None:
            from ..parallel.comm import TrafficLedger

            self._traffic = TrafficLedger()
        return self._traffic

    def make_workspace(self, enabled: bool = True) -> Workspace:
        """A scratch arena counted in this context's ledger and released
        when the context closes."""
        ws = Workspace(enabled=enabled, inst=self.inst)
        self._workspaces.append(ws)
        return ws

    @property
    def null_workspace(self) -> Workspace:
        """This context's disabled (eager-allocation) workspace."""
        if self._null_ws is None:
            self._null_ws = Workspace(enabled=False, inst=self.inst)
        return self._null_ws

    def attach_comm(self, comm) -> None:
        """Point ``comm``'s per-rank ledger at this context's traffic
        and its tracer at this context's timeline."""
        if getattr(comm, "ledger", None) is None:
            comm.ledger = self.traffic
        if getattr(comm, "tracer", None) is None:
            comm.tracer = self.tracer

    def export_rank_data(self) -> Dict[str, object]:
        """The context's measurement state as a small picklable dict.

        Contexts themselves do not cross process boundaries (they own a
        live backend, arenas, compiled sweeps); what a process-mode
        worker ships home is this bundle — the instrumentation ledger,
        the per-rank traffic ledger (if a comm ever attached) and the
        tracer with its recorded timeline.
        """
        return {
            "rank": self.rank,
            "name": self.name,
            "inst": self.inst,
            "traffic": self._traffic,
            "tracer": self.tracer,
        }

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release owned resources: arenas, graph cache, backend pools.

        Idempotent.  The context object stays usable for *reading*
        ledgers after close (aggregation happens after the rank
        finishes); only cached resources are dropped.
        """
        if self.closed:
            return
        self.closed = True
        with ExecutionContext._live_lock:
            ExecutionContext._live.discard(self)
        for ws in self._workspaces:
            ws.release()
        if self._null_ws is not None:
            self._null_ws.release()
        self.graph_cache.clear()
        space = self._space
        if space is None:
            # default-context shim: the process default space (if one
            # was ever built) carried this context's jit cache — clear
            # it too, so a fresh context re-warns about degradations
            # instead of inheriting the once-per-key silence
            from .parallel import peek_default_space

            space = peek_default_space()
        if space is not None:
            cache = getattr(space, "jit_cache", None)
            if cache is not None:
                cache.clear()
        if self._owns_space and self._space is not None:
            shutdown = getattr(self._space, "shutdown", None)
            if shutdown is not None:
                shutdown()

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backend = self._space.name if self._space is not None else "<default>"
        return (f"ExecutionContext({self.name!r}, rank={self.rank}, "
                f"backend={backend}, closed={self.closed})")


_default_lock = threading.Lock()
_default: Optional[ExecutionContext] = None


def default_context() -> ExecutionContext:
    """The deprecated process-wide compatibility shim.

    Wraps the old globals — ``GLOBAL_INSTRUMENTATION``,
    ``GLOBAL_REGISTRY``, ``GLOBAL_TIMERS`` and the process default
    execution space — in one shared context, so code predating explicit
    contexts keeps exactly its old behaviour.  New code should build an
    :class:`ExecutionContext` per rank and pass it explicitly.
    """
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                from ..timing import GLOBAL_TIMERS

                _default = ExecutionContext(
                    backend=None,
                    inst=GLOBAL_INSTRUMENTATION,
                    registry=GLOBAL_REGISTRY,
                    timers=GLOBAL_TIMERS,
                    name="default",
                )
    return _default
