"""Memory spaces and layouts for the portability layer.

Mirrors the Kokkos memory model described in the paper (§V-B *Memory
Management*):

* :class:`HostSpace` — ordinary host DRAM.  On Sunway, the MPE and CPEs
  share this space ("similar to the unified memory used in CUDA-capable
  GPUs"), so the Athread backend needs no separate device space.
* :class:`DeviceSpace` — discrete accelerator memory (CUDA / HIP GPUs on
  the GPU workstation and ORISE).  Host code must not dereference device
  views directly; it must go through mirror views and ``deep_copy``.
* :class:`LDMSpace` — the 256 kB per-CPE Local Data Memory of the
  SW26010 Pro.  Not a general allocation target; used by the Athread
  backend for scratch tiles (see :mod:`repro.kokkos.ldm`).

Layouts follow Kokkos: ``LayoutRight`` (C order, stride-1 rightmost
index) and ``LayoutLeft`` (Fortran order, stride-1 leftmost index).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemorySpace:
    """A named memory space with an accessibility discipline."""

    name: str
    #: True when host code may dereference data living in this space.
    host_accessible: bool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MemorySpace({self.name})"


HostSpace = MemorySpace("Host", host_accessible=True)
DeviceSpace = MemorySpace("Device", host_accessible=False)
LDMSpace = MemorySpace("LDM", host_accessible=False)


@dataclass(frozen=True)
class Layout:
    """An array memory layout (maps to a NumPy order character)."""

    name: str
    numpy_order: str  # "C" or "F"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Layout{self.name}"


LayoutRight = Layout("Right", "C")
LayoutLeft = Layout("Left", "F")

#: Default layout per execution-space family, as in Kokkos: GPUs prefer
#: LayoutLeft (coalesced along the parallel index), CPUs LayoutRight.
DEFAULT_DEVICE_LAYOUT = LayoutLeft
DEFAULT_HOST_LAYOUT = LayoutRight
