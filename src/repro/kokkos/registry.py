"""Functor registration and lookup for the Athread dispatch path.

The Sunway Athread API only accepts plain C functions, so real Kokkos
template functors cannot be launched directly on CPEs.  The paper solves
this with *functional registration and callbacks* (§V-B *Innovations*):
every functor class is registered under a preset function name via the
``KOKKOS_REGISTER_FOR_1D(name, Functor)`` macro; at kernel-launch time
the Athread backend looks the functor up and invokes the preset, which
calls the functor's ``operator()``.

The paper deliberately chose a **linked list** for the registry ("a
trade-off between the temporal and spatial complexities while
maintaining robustness", O(n) lookup), then accelerated the matching
with two Sunway features; we model both, plus a hash map as the
non-Sunway reference, so the ablation benchmark can compare them:

* :class:`LinkedListRegistry` — plain O(n) scan (the baseline).
* ``LinkedListRegistry(ldm_cache=True)`` — a small LRU cache of hot
  entries consulted before the scan, the analog of keeping hot entries
  in LDM ("leveraged ... Local Data Memory (LDM) to reduce memory
  latency").
* ``LinkedListRegistry(simd_width=8)`` — keys compared in vector
  batches against a packed hash array ("SIMD vectorization for
  accelerated kernel matching").  The packed array is rebuilt lazily
  after registrations.
* :class:`DictRegistry` — hash map (O(1)).

Both the comparison count (the architectural metric the Sunway
optimizations target) and wall time are exposed for the benchmarks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional

import numpy as np

from ..errors import RegistrationError


@dataclass
class RegistryEntry:
    """One registered preset function.

    Attributes
    ----------
    name:
        The user-chosen preset-function name (``Arg1`` of the macro).
    functor_type:
        The functor class (``Arg2`` of the macro).
    kind:
        ``"for"`` or ``"reduce"`` — which parallel construct the preset
        implements.
    ndim:
        Rank of the loop the preset was generated for.
    callback:
        The preset function itself: invoked by the backend to run the
        functor over a tile.
    """

    name: str
    functor_type: type
    kind: str
    ndim: int
    callback: Optional[Callable] = None

    @property
    def key(self) -> Hashable:
        return self.functor_type


class _Node:
    __slots__ = ("entry", "next")

    def __init__(self, entry: RegistryEntry, nxt: Optional["_Node"]) -> None:
        self.entry = entry
        self.next = nxt


class LinkedListRegistry:
    """The paper's linked-list functor registry.

    Parameters
    ----------
    ldm_cache:
        Keep the most recently matched entries in a small LRU cache
        consulted before the list scan (the LDM hot-entry cache).
    simd_width:
        When > 1, the list scan is replaced by a vectorised sweep over a
        packed array of key hashes in batches of ``simd_width``.
    cache_size:
        LDM cache capacity (entries); 8 fits comfortably in LDM.
    """

    def __init__(
        self, ldm_cache: bool = False, simd_width: int = 1, cache_size: int = 8
    ) -> None:
        if simd_width < 1:
            raise ValueError("simd_width must be >= 1")
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self._head: Optional[_Node] = None
        self._size = 0
        self.ldm_cache = ldm_cache
        self.simd_width = simd_width
        self.cache_size = cache_size
        #: Number of key comparisons performed (one per list node visited,
        #: one per vector batch, one per LDM-cache slot probed).
        self.comparisons = 0
        self._cache: List[RegistryEntry] = []
        self._packed_dirty = True
        self._hash_array = np.empty(0, dtype=np.int64)
        self._entry_list: List[RegistryEntry] = []
        # register/lookup mutate shared structure (LRU cache order, the
        # packed hash array, comparison counters); contexts on different
        # threads may share one registry through the default shim
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._size

    # -- registration -------------------------------------------------------

    def register(self, entry: RegistryEntry) -> RegistryEntry:
        """Insert ``entry`` at the head of the list.

        Re-registering the same functor type replaces the old entry, so
        repeated imports are idempotent.
        """
        with self._lock:
            node = self._head
            while node is not None:
                if node.entry.key == entry.key:
                    node.entry = entry
                    break
                node = node.next
            else:
                self._head = _Node(entry, self._head)
                self._size += 1
            self._packed_dirty = True
            self._cache = [e for e in self._cache if e.key != entry.key]
        return entry

    def entries(self) -> List[RegistryEntry]:
        """All entries in list order (head first)."""
        out = []
        node = self._head
        while node is not None:
            out.append(node.entry)
            node = node.next
        return out

    # -- lookup ---------------------------------------------------------------

    def _cache_probe(self, key: Hashable) -> Optional[RegistryEntry]:
        for i, entry in enumerate(self._cache):
            self.comparisons += 1
            if entry.key == key:
                if i:  # LRU: move to the cache front
                    self._cache.insert(0, self._cache.pop(i))
                return entry
        return None

    def _cache_insert(self, entry: RegistryEntry) -> None:
        self._cache.insert(0, entry)
        del self._cache[self.cache_size:]

    def _rebuild_packed(self) -> None:
        self._entry_list = self.entries()
        self._hash_array = np.array(
            [hash(e.key) for e in self._entry_list], dtype=np.int64
        ) if self._entry_list else np.empty(0, dtype=np.int64)
        self._packed_dirty = False

    def _scan(self, key: Hashable) -> Optional[RegistryEntry]:
        if self.simd_width > 1:
            if self._packed_dirty:
                self._rebuild_packed()
            h = hash(key)
            w = self.simd_width
            arr = self._hash_array
            for lo in range(0, arr.size, w):
                self.comparisons += 1  # one vector compare per batch
                matches = np.nonzero(arr[lo:lo + w] == h)[0]
                for m in matches:
                    entry = self._entry_list[lo + int(m)]
                    if entry.key == key:
                        return entry
            return None
        node = self._head
        while node is not None:
            self.comparisons += 1
            if node.entry.key == key:
                return node.entry
            node = node.next
        return None

    def lookup(self, functor_type: type) -> RegistryEntry:
        """Find the entry registered for ``functor_type``.

        Raises
        ------
        RegistrationError
            When the functor was never registered — the same failure a
            real Athread launch of an unregistered template functor hits.
        """
        with self._lock:
            if self.ldm_cache:
                hit = self._cache_probe(functor_type)
                if hit is not None:
                    return hit
            entry = self._scan(functor_type)
            if entry is None:
                raise RegistrationError(
                    f"functor {functor_type.__name__!r} is not registered for "
                    "the Athread backend; add @kokkos_register_for(...)"
                )
            if self.ldm_cache:
                self._cache_insert(entry)
            return entry

    def contains(self, functor_type: type) -> bool:
        try:
            self.lookup(functor_type)
            return True
        except RegistrationError:
            return False

    def clear(self) -> None:
        with self._lock:
            self._head = None
            self._size = 0
            self.comparisons = 0
            self._cache.clear()
            self._packed_dirty = True


class DictRegistry:
    """Hash-map registry (the conventional O(1) alternative)."""

    def __init__(self) -> None:
        self._map: dict = {}
        self.comparisons = 0

    def __len__(self) -> int:
        return len(self._map)

    def register(self, entry: RegistryEntry) -> RegistryEntry:
        self._map[entry.key] = entry
        return entry

    def entries(self) -> List[RegistryEntry]:
        return list(self._map.values())

    def lookup(self, functor_type: type) -> RegistryEntry:
        self.comparisons += 1
        try:
            return self._map[functor_type]
        except KeyError:
            raise RegistrationError(
                f"functor {functor_type.__name__!r} is not registered for the "
                "Athread backend; add @kokkos_register_for(...)"
            ) from None

    def contains(self, functor_type: type) -> bool:
        return functor_type in self._map

    def clear(self) -> None:
        self._map.clear()
        self.comparisons = 0


#: The process-wide registry consulted by the Athread backend.  Uses the
#: paper's configuration: linked list + LDM hot-entry cache + SIMD match.
GLOBAL_REGISTRY = LinkedListRegistry(ldm_cache=True, simd_width=8)


def default_registry() -> LinkedListRegistry:
    """The process-wide registration table.

    ``@kokkos_register_for`` decorators at import time land here, and a
    :class:`~repro.kokkos.context.ContextRegistry` falls back to it on a
    local miss.  Library code should reach the table through this
    accessor (or a context's ``.registry``) rather than naming the
    ``GLOBAL_REGISTRY`` singleton — the ``global-state`` kernelcheck
    rule enforces that.
    """
    return GLOBAL_REGISTRY
