"""Regenerators for the performance figures: Fig. 2, 7, 8/Table V, 9.

These drive :mod:`repro.perfmodel` over exactly the sweeps the paper
reports and render the same rows/series.  Paper values are carried
alongside so every output is a paper-vs-model comparison (the data
behind EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..ocean.config import PAPER_CONFIGS, WEAK_SCALING_CONFIGS
from ..perfmodel.calibration import FIG7_ANCHORS, STRONG_ANCHORS, WEAK_ANCHORS, weak_cases
from ..perfmodel.related_work import RELATED_WORK, kilometer_scale_realistic_leaders
from ..perfmodel.scaling import (
    ScalingPoint,
    optimization_speedup,
    portability_sypd,
    strong_scaling,
    weak_scaling,
)


# ---------------------------------------------------------------------------
# Fig. 2 — related-work landscape
# ---------------------------------------------------------------------------

def fig2_series() -> List[Tuple[str, float, float, bool]]:
    """(label, resolution_km, sypd, is_this_work) scatter points."""
    return [
        (f"{p.name} ({p.year}, {p.system})", p.resolution_km, p.sypd, p.this_work)
        for p in RELATED_WORK
    ]


def format_fig2() -> str:
    lines = [f"{'System':<48s} {'res[km]':>8s} {'SYPD':>7s}"]
    for label, res, sypd, ours in fig2_series():
        mark = "  <== this work" if ours else ""
        lines.append(f"{label:<48s} {res:>8.3f} {sypd:>7.3f}{mark}")
    leaders = kilometer_scale_realistic_leaders()
    lines.append(
        f"\nrealistic global ocean models at <=1.2 km: "
        f"{', '.join(sorted(set(p.name for p in leaders)))}"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fig. 7 — single-node portability
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PortabilityRow:
    machine: str
    kokkos_sypd: float
    fortran_sypd: float
    speedup: float
    paper_kokkos: float
    paper_speedup: float


def fig7_rows() -> List[PortabilityRow]:
    cfg = PAPER_CONFIGS["coarse_100km"]
    paper_speedups = {
        "gpu_workstation": 7.08, "orise": 11.42,
        "new_sunway": 11.45, "taishan": 1.03,
    }
    rows = []
    for name, (paper_k, _paper_f) in FIG7_ANCHORS.items():
        k, f, sp = portability_sypd(cfg, name)
        rows.append(PortabilityRow(name, k, f, sp, paper_k, paper_speedups[name]))
    return rows


def format_fig7() -> str:
    lines = [
        f"{'platform':<16s} {'LICOMK++':>10s} {'LICOM3':>8s} {'speedup':>8s} "
        f"{'paper':>10s} {'paper x':>8s}"
    ]
    for r in fig7_rows():
        lines.append(
            f"{r.machine:<16s} {r.kokkos_sypd:>10.2f} {r.fortran_sypd:>8.2f} "
            f"{r.speedup:>8.2f} {r.paper_kokkos:>10.2f} {r.paper_speedup:>8.2f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fig. 8 / Table V — strong scaling
# ---------------------------------------------------------------------------

def table5_sweeps() -> Dict[Tuple[str, str], Tuple[List[ScalingPoint], Tuple[float, ...]]]:
    """All six Table V sweeps: (machine, config) -> (model rows, paper SYPD)."""
    out: Dict[Tuple[str, str], Tuple[List[ScalingPoint], Tuple[float, ...]]] = {}
    for machine, curves in STRONG_ANCHORS.items():
        for cfg_name, units, paper in curves:
            rows = strong_scaling(PAPER_CONFIGS[cfg_name], machine, list(units))
            out[(machine, cfg_name)] = (rows, paper)
    return out


def format_table5() -> str:
    lines = []
    for (machine, cfg_name), (rows, paper) in table5_sweeps().items():
        lines.append(f"-- {cfg_name} on {machine}")
        lines.append(
            f"   {'units':>8s} {'cores':>10s} {'SYPD':>8s} {'eff':>7s} "
            f"{'paper SYPD':>11s} {'paper eff':>10s}"
        )
        p0, u0 = paper[0], rows[0].units
        for r, p in zip(rows, paper):
            paper_eff = (p / p0) / (r.units / u0)
            lines.append(
                f"   {r.units:>8d} {r.cores:>10d} {r.sypd:>8.3f} "
                f"{r.efficiency * 100:>6.1f}% {p:>11.3f} {paper_eff * 100:>9.1f}%"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fig. 9 — weak scaling
# ---------------------------------------------------------------------------

def fig9_series(machine: str) -> List[ScalingPoint]:
    return weak_scaling(machine, weak_cases(machine))


def format_fig9() -> str:
    lines = []
    for machine, paper_final in WEAK_ANCHORS.items():
        rows = fig9_series(machine)
        lines.append(f"-- weak scaling on {machine} (paper final eff "
                     f"{paper_final * 100:.1f}%)")
        for (cfg, _), r in zip(weak_cases(machine), rows):
            lines.append(
                f"   {cfg.resolution_km:>6.2f} km on {r.units:>7d} units "
                f"({r.cores:>10d} cores): eff {r.efficiency * 100:>6.1f}%"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# §VIII optimized-vs-original (2.7x / 3.9x)
# ---------------------------------------------------------------------------

def optimization_rows() -> List[Tuple[str, float, float]]:
    """(config, model speedup, paper speedup) on near-full Sunway."""
    return [
        ("km_1km",
         optimization_speedup(PAPER_CONFIGS["km_1km"], "new_sunway", 590250),
         3.9),
        ("km_2km_fulldepth",
         optimization_speedup(PAPER_CONFIGS["km_2km_fulldepth"], "new_sunway", 576000),
         2.7),
    ]


def format_optimizations() -> str:
    lines = [f"{'config':<20s} {'model x':>8s} {'paper x':>8s}"]
    for name, model, paper in optimization_rows():
        lines.append(f"{name:<20s} {model:>8.2f} {paper:>8.2f}")
    return "\n".join(lines)
