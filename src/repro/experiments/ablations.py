"""Ablation drivers for the paper's individual optimizations.

* A1 — canuto load balancing (§V-C1, Fig. 4): measured imbalance of the
  realistic topography and the critical-path reduction of the paper's
  gather/redistribute scheme.
* A2 — halo/pack optimizations (§V-D, Fig. 5): wall-clock of the pack
  strategies and 3-D halo transpose variants on a representative slab.
* A3 — functor-registry variants (§V-B): lookup cost of the linked
  list, with/without the LDM move-to-front cache and SIMD matching,
  against a hash map.
* A4 — step-graph capture & replay: launches per step eager vs the
  sealed graph (elementwise fusion merges adjacent compatible
  launches), plus measured steps/sec for the launch-plan cache and
  workspace arena.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..kokkos.registry import DictRegistry, LinkedListRegistry, RegistryEntry
from ..ocean import demo, land_mask, make_grid
from ..parallel.comm import SimWorld, TrafficLedger
from ..parallel.decomp import BlockDecomposition, choose_process_grid
from ..parallel.halo import exchange3d, pack_naive, pack_sliced
from ..parallel.halo_fused import FusedHaloExchange
from ..parallel.halo_transpose import GHOST_HALO_TRANSPOSES, REAL_HALO_TRANSPOSES
from ..parallel.loadbalance import ImbalanceStats, imbalance_stats


# ---------------------------------------------------------------------------
# A1 — canuto load balance
# ---------------------------------------------------------------------------

def loadbalance_study(
    size: str = "medium", rank_counts: Sequence[int] = (4, 16, 64)
) -> List[Tuple[int, ImbalanceStats]]:
    """Imbalance of the realistic land-sea mask vs rank count.

    Reproduces the Fig. 4 effect: more ranks => more blocks straddle the
    coastline => worse naive imbalance => bigger balanced-scheme win.
    """
    cfg = demo(size)
    grid = make_grid(cfg.ny, cfg.nx, cfg.nz)
    ocean = ~land_mask(grid)
    out = []
    for ranks in rank_counts:
        npy, npx = choose_process_grid(cfg.ny, cfg.nx, ranks)
        decomp = BlockDecomposition(cfg.ny, cfg.nx, npy, npx, north_fold=False)
        out.append((ranks, imbalance_stats(decomp, ocean)))
    return out


def format_loadbalance(rows: List[Tuple[int, ImbalanceStats]]) -> str:
    lines = [f"{'ranks':>6s} {'max cols':>9s} {'balanced':>9s} "
             f"{'imbalance':>10s} {'speedup':>8s}"]
    for ranks, s in rows:
        lines.append(
            f"{ranks:>6d} {s.naive_max:>9d} {s.balanced_max:>9d} "
            f"{s.imbalance_factor:>9.2f}x {s.speedup:>7.2f}x"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# A2 — pack and transpose strategies
# ---------------------------------------------------------------------------

def _time(fn: Callable, *args, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def pack_study(ny: int = 400, nx: int = 400, halo: int = 2) -> Dict[str, float]:
    """Wall time of the pack strategies on one boundary slab [s]."""
    arr = np.random.default_rng(0).standard_normal((ny, nx))
    rows, cols = slice(0, ny), slice(halo, 2 * halo)
    return {
        "naive": _time(pack_naive, arr, rows, cols),
        "sliced": _time(pack_sliced, arr, rows, cols),
    }


def transpose_study(nz: int = 80, n: int = 600, halo: int = 2) -> Dict[str, Dict[str, float]]:
    """Wall time of the Fig. 5 transpose implementations [s]."""
    rng = np.random.default_rng(1)
    real = rng.standard_normal((nz, halo, n))
    out: Dict[str, Dict[str, float]] = {"real": {}, "ghost": {}}
    for name, fn in REAL_HALO_TRANSPOSES.items():
        out["real"][name] = _time(fn, real)
    vmaj = REAL_HALO_TRANSPOSES["vectorized"](real)
    for name, fn in GHOST_HALO_TRANSPOSES.items():
        out["ghost"][name] = _time(fn, vmaj)
    return out


def fused_halo_study(
    ny: int = 48,
    nx: int = 64,
    nz: int = 8,
    n_fields: int = 6,
    npy: int = 2,
    npx: int = 2,
    rounds: int = 2,
) -> Tuple[TrafficLedger, TrafficLedger, float]:
    """Measured wire-message shape: per-field vs fused halo updates.

    Runs the same ``n_fields``-field 3-D halo update on a real
    ``npy x npx`` SimWorld twice — once as independent per-field
    :func:`exchange3d` calls, once through :class:`FusedHaloExchange` —
    and returns ``(per_field_ledger, fused_ledger, aggregation)`` where
    ``aggregation`` is the per-field/fused message-count ratio that
    feeds the network model's ``aggregation`` knob.
    """
    decomp = BlockDecomposition(ny, nx, npy, npx)

    def local_fields(rank: int) -> List[np.ndarray]:
        ly, lx = decomp.local_shape(rank)
        rng = np.random.default_rng(100 + rank)
        return [rng.standard_normal((nz, ly, lx)) for _ in range(n_fields)]

    def per_field(comm) -> TrafficLedger:
        fields = local_fields(comm.rank)
        for _ in range(rounds):
            for f in fields:
                exchange3d(comm, decomp, comm.rank, f, 1.0, 0.0)
        return comm.world.traffic

    def fused(comm) -> TrafficLedger:
        fields = local_fields(comm.rank)
        fx = FusedHaloExchange(comm, decomp, comm.rank)
        for _ in range(rounds):
            fx.exchange([(f, 1.0, 0.0) for f in fields], phase="fused_halo")
        return comm.world.traffic

    lp = SimWorld.run(per_field, npy * npx)[0]
    lf = SimWorld.run(fused, npy * npx)[0]
    return lp, lf, lp.messages / max(1, lf.messages)


def format_fused_halo(
    study: Tuple[TrafficLedger, TrafficLedger, float] | None = None,
) -> str:
    from ..perfmodel.network import ledger_message_summary

    per_field, fused, agg = fused_halo_study() if study is None else study
    lines = ["fused multi-field halo (4 ranks, 6 fields, 2 rounds):",
             "  per-field exchange:"]
    lines += [f"    {l}" for l in ledger_message_summary(per_field).splitlines()]
    lines.append("  fused exchange:")
    lines += [f"    {l}" for l in ledger_message_summary(fused).splitlines()]
    lines.append(f"  message aggregation factor: {agg:.2f}x")
    return "\n".join(lines)


def format_halo_ablation() -> str:
    packs = pack_study()
    trans = transpose_study()
    lines = ["pack strategies (one boundary slab):"]
    for name, t in packs.items():
        lines.append(f"  {name:<12s} {t * 1e3:8.3f} ms "
                     f"({packs['naive'] / t:6.1f}x vs naive)")
    for direction, rows in trans.items():
        lines.append(f"{direction}-halo transpose (Fig. 5):")
        for name, t in rows.items():
            lines.append(f"  {name:<12s} {t * 1e3:8.3f} ms "
                         f"({rows['naive'] / t:6.1f}x vs naive)")
    lines.append(format_fused_halo())
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# A3 — registry variants
# ---------------------------------------------------------------------------

def _make_functor_types(n: int) -> List[type]:
    return [type(f"BenchFunctor{i}", (), {"__call__": lambda self, i: None})
            for i in range(n)]


def registry_study(
    n_functors: int = 64, lookups: int = 2000, hot_fraction: float = 0.9
) -> Dict[str, Tuple[float, int]]:
    """(wall seconds, key comparisons) per registry variant.

    ``hot_fraction`` of lookups hit a small working set — the realistic
    access pattern (a model step launches the same kernels every step),
    which is what the LDM move-to-front cache exploits.
    """
    types = _make_functor_types(n_functors)
    rng = np.random.default_rng(7)
    hot = types[: max(1, n_functors // 8)]
    seq = [
        hot[rng.integers(len(hot))] if rng.random() < hot_fraction
        else types[rng.integers(len(types))]
        for _ in range(lookups)
    ]

    variants = {
        "linked_list": LinkedListRegistry(),
        "ll_ldm_cache": LinkedListRegistry(ldm_cache=True),
        "ll_simd": LinkedListRegistry(simd_width=8),
        "ll_ldm_simd": LinkedListRegistry(ldm_cache=True, simd_width=8),
        "dict": DictRegistry(),
    }
    out: Dict[str, Tuple[float, int]] = {}
    for name, reg in variants.items():
        for t in types:
            reg.register(RegistryEntry(t.__name__, t, "for", 1))
        t0 = time.perf_counter()
        for t in seq:
            reg.lookup(t)
        out[name] = (time.perf_counter() - t0, reg.comparisons)
    return out


def format_registry_ablation() -> str:
    rows = registry_study()
    base_t, base_c = rows["linked_list"]
    lines = [f"{'registry':<14s} {'time[ms]':>9s} {'comparisons':>12s} "
             f"{'cmp reduction':>14s}"]
    for name, (t, c) in rows.items():
        lines.append(
            f"{name:<14s} {t * 1e3:>9.3f} {c:>12d} {base_c / max(c, 1):>13.2f}x"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# A4 — step-graph capture & replay
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GraphStudy:
    """Launches-per-step accounting: eager dispatch vs sealed graph."""

    eager_launches_per_step: float   # instrumented, steady state
    captured_launches: int           # nodes recorded during capture
    replay_launches: int             # launches one replay issues
    fused_groups: int                # adjacent runs merged by the pass
    eager_steps_per_sec: float
    graph_steps_per_sec: float

    @property
    def launches_saved(self) -> int:
        return self.captured_launches - self.replay_launches

    @property
    def speedup(self) -> float:
        return self.graph_steps_per_sec / max(self.eager_steps_per_sec, 1e-30)


def graph_study(size: str = "tiny", steps: int = 6) -> GraphStudy:
    """A4 — measure the launch-count and wall-clock effect of replay.

    Both runs warm up past the Euler start step before timing, so the
    graph run times pure replay (capture happened during warmup) and the
    eager run times the same steady-state step sequence.
    """
    from ..kokkos import Instrumentation, SerialBackend
    from ..ocean import LICOMKpp, demo
    from ..ocean.model import ModelParams

    cfg = demo(size)

    def run(params: ModelParams):
        inst = Instrumentation()
        model = LICOMKpp(cfg, backend=SerialBackend(inst=inst), params=params)
        model.run_steps(2)          # past the Euler start (and graph capture)
        inst.reset()
        t0 = time.perf_counter()
        model.run_steps(steps)
        dt = time.perf_counter() - t0
        return model, inst, steps / dt

    eager_model, eager_inst, eager_sps = run(ModelParams())
    graph_model, _, graph_sps = run(ModelParams(graph=True))
    steady = [g for (startup, _), g in graph_model._graphs.items()
              if not startup]
    graph = steady[0] if steady else next(iter(graph_model._graphs.values()))
    return GraphStudy(
        eager_launches_per_step=eager_inst.total_launches / steps,
        captured_launches=graph.captured_launches,
        replay_launches=graph.launches_per_replay,
        fused_groups=graph.fused_groups,
        eager_steps_per_sec=eager_sps,
        graph_steps_per_sec=graph_sps,
    )


def format_graph_ablation(study: GraphStudy | None = None) -> str:
    s = graph_study() if study is None else study
    lines = [
        "step-graph capture & replay (tiny, serial, steady state):",
        f"  eager launches/step:   {s.eager_launches_per_step:8.1f}",
        f"  captured launches:     {s.captured_launches:8d}",
        f"  replay launches/step:  {s.replay_launches:8d} "
        f"({s.fused_groups} fused groups, {s.launches_saved} saved)",
        f"  eager steps/sec:       {s.eager_steps_per_sec:8.2f}",
        f"  graph steps/sec:       {s.graph_steps_per_sec:8.2f} "
        f"({s.speedup:.2f}x)",
    ]
    return "\n".join(lines)
