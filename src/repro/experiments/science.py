"""Regenerators for the science figures: Fig. 1 (SST, trench) and Fig. 6 (Ro).

These run the *actual* ocean model at laptop-scale analogs of the
paper's resolutions and evaluate the qualitative claims:

* Fig. 1a-e — the SST field keeps a warm pool, a tropics-to-pole
  gradient and sharp fronts after spin-up;
* Fig. 1f-g — the full-depth configuration resolves a Mariana-like
  trench below 10 000 m and carries a 3-D temperature structure at
  abyssal depths;
* Fig. 6 — the |Ro| distribution broadens monotonically with
  resolution (the "richer submesoscale structures" claim scaled down
  to the resolutions a laptop can integrate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ocean import (
    LICOMKpp,
    ModelParams,
    RossbyStats,
    SSTStats,
    demo,
    make_grid,
    make_topography,
    rossby_stats,
    sst_stats,
    temperature_section,
)
from ..ocean.topography import MARIANA_DEPTH, TRENCH_CENTER


@dataclass
class Fig1Result:
    """Everything the Fig. 1 analog asserts."""

    sst: SSTStats
    days: float
    trench_max_depth: float
    trench_levels: int
    abyssal_temperature: float     # mean T below 6000 m near the trench


def run_fig1(
    size: str = "small",
    days: float = 20.0,
    backend: str = "serial",
) -> Fig1Result:
    """Spin up the demo config and evaluate the SST structure; build the
    full-depth trench configuration and probe the abyss."""
    model = LICOMKpp(demo(size), backend=backend)
    model.run_days(days)
    stats = sst_stats(model)

    # full-depth (2-km analog) configuration with the Mariana-like trench;
    # at least the "small" vertical grid so level centers resolve > 6 km
    deep_size = "small" if size == "tiny" else size
    deep_cfg = demo(deep_size, full_depth=True)
    deep = LICOMKpp(deep_cfg, backend=backend)
    deep.run_steps(2)
    d = deep.domain
    h = d.halo
    lon = deep.grid.lon_t
    lat = deep.grid.lat_t
    i = int(np.argmin(np.abs(lon - TRENCH_CENTER[0])))
    j = int(np.argmin(np.abs(lat - TRENCH_CENTER[1])))
    depth_col = float(deep.topo.depth[j, i])
    kmt = int(deep.topo.kmt[j, i])
    t = deep.state.t.cur.raw[:, h + j, h + i]
    deep_levels = d.z_t > 6000.0
    abyssal = float(t[deep_levels & (np.arange(d.nz) < kmt)].mean()) if (
        deep_levels & (np.arange(d.nz) < kmt)).any() else float("nan")
    return Fig1Result(
        sst=stats,
        days=days,
        trench_max_depth=depth_col,
        trench_levels=kmt,
        abyssal_temperature=abyssal,
    )


def format_fig1(result: Fig1Result) -> str:
    s = result.sst
    return "\n".join([
        f"SST after {result.days:.0f} days:",
        f"  range {s.min:.2f} .. {s.max:.2f} C (mean {s.mean:.2f})",
        f"  warm pool (|lat|<15): {s.tropical_mean:.2f} C",
        f"  polar (|lat|>60):     {s.polar_mean:.2f} C",
        f"  meridional gradient:  {s.meridional_gradient:.2f} C",
        f"  frontal sharpness p99: {s.frontal_sharpness:.3f} C/100km",
        f"trench (Mariana analog, {TRENCH_CENTER}):",
        f"  column depth {result.trench_max_depth:.0f} m "
        f"(paper max {MARIANA_DEPTH:.0f} m), {result.trench_levels} levels",
        f"  mean abyssal T below 6000 m: {result.abyssal_temperature:.2f} C",
    ])


def run_fig6(
    sizes: Sequence[str] = ("tiny", "small", "medium"),
    days: float = 15.0,
    backend: str = "serial",
) -> List[RossbyStats]:
    """Integrate the same globe at nested resolutions; return |Ro| stats.

    The paper compares 10 / 2 / 1 km; the laptop analog compares the
    demo sizes (~16 / ~8 / ~4 degrees).  The claim under test is the
    monotone enrichment of the |Ro| distribution with resolution.
    """
    out: List[RossbyStats] = []
    for size in sizes:
        model = LICOMKpp(demo(size), backend=backend)
        model.run_days(days)
        out.append(rossby_stats(model))
    return out


def format_fig6(stats: Sequence[RossbyStats]) -> str:
    lines = [
        f"{'res[km]':>9s} {'rms|Ro|':>10s} {'p90':>10s} {'p99':>10s} "
        f"{'max':>10s} {'frac>0.1':>9s}"
    ]
    for s in stats:
        lines.append(
            f"{s.resolution_km:>9.0f} {s.rms:>10.2e} {s.p90:>10.2e} "
            f"{s.p99:>10.2e} {s.max:>10.2e} {s.submesoscale_fraction:>9.3f}"
        )
    lines.append("(paper Fig. 6: finer resolution => broader |Ro| distribution)")
    return "\n".join(lines)
