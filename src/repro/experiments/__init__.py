"""``repro.experiments`` — one driver per paper table/figure.

=======  ==============================================  ======================
ID       Paper artifact                                  Driver
=======  ==============================================  ======================
T1-T4    Tables I-IV                                     :mod:`.tables`
F2       Fig. 2 related-work landscape                   :mod:`.performance`
F7       Fig. 7 single-node portability                  :mod:`.performance`
F8/T5    Fig. 8 + Table V strong scaling                 :mod:`.performance`
F9       Fig. 9 weak scaling                             :mod:`.performance`
A4       §VIII optimized-vs-original speedups            :mod:`.performance`
F1       Fig. 1 SST / trench science results             :mod:`.science`
F6       Fig. 6 Rossby-number resolution comparison      :mod:`.science`
A1-A3    load-balance / halo / registry ablations        :mod:`.ablations`
=======  ==============================================  ======================
"""

from . import ablations, performance, science, tables

__all__ = ["tables", "performance", "science", "ablations"]
