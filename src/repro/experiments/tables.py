"""Regenerators for the paper's static tables (I, II, III, IV).

Each function returns the table as structured rows and a ``format_*``
companion renders the text table the paper prints.  The benchmark
harness calls these so the artifacts land in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import List, Tuple

from ..ocean.config import PAPER_CONFIGS, WEAK_SCALING_CONFIGS, ModelConfig
from ..perfmodel.machines import MACHINES, support_matrix_rows


def table1_rows() -> Tuple[Tuple[str, str, str], ...]:
    """Table I: architecture / programming model / Kokkos support."""
    return support_matrix_rows()


def format_table1() -> str:
    lines = [f"{'Architecture':<20s} {'Programming model':<18s} {'Kokkos'}"]
    for arch, model, kokkos in table1_rows():
        lines.append(f"{arch:<20s} {model:<18s} {kokkos}")
    return "\n".join(lines)


def table2_rows() -> List[Tuple[str, str, str]]:
    """Table II: the four systems' node configurations."""
    return [
        (m.name, m.description, m.programming_model) for m in MACHINES.values()
    ]


def format_table2() -> str:
    lines = [f"{'System':<16s} {'Back-end':<8s} Node"]
    for name, desc, model in table2_rows():
        lines.append(f"{name:<16s} {model:<8s} {desc}")
    return "\n".join(lines)


def table3_rows() -> List[ModelConfig]:
    """Table III: the four LICOMK++ configurations."""
    return list(PAPER_CONFIGS.values())


def format_table3() -> str:
    lines = [
        f"{'Config':<18s} {'Res[km]':>8s} {'Horizontal':>14s} {'Levels':>7s} "
        f"{'dt barot/baroc/tracer [s]':>26s}"
    ]
    for c in table3_rows():
        lines.append(
            f"{c.name:<18s} {c.resolution_km:>8.0f} {c.nx:>7d}x{c.ny:<6d} "
            f"{c.nz:>7d} {c.dt_barotropic:>8.0f}/{c.dt_baroclinic:.0f}/{c.dt_tracer:.0f}"
        )
    return "\n".join(lines)


def table4_rows() -> List[Tuple[ModelConfig, int, int]]:
    """Table IV: six weak-scaling scales with paper resource counts."""
    return list(WEAK_SCALING_CONFIGS)


def format_table4() -> str:
    lines = [
        f"{'Resolution':<12s} {'Grid points':>22s} {'HIP GPUs':>9s} {'Sunway cores':>13s}"
    ]
    for cfg, gpus, cores in table4_rows():
        lines.append(
            f"{cfg.resolution_km:>7.2f} km  {cfg.nx:>7d}x{cfg.ny:<6d}x{cfg.nz:<3d} "
            f"{gpus:>9d} {cores:>13d}"
        )
    return "\n".join(lines)
