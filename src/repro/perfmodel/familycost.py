"""Per-kernel-family cost shares: pricing a PrecisionPolicy honestly.

The flat §VIII projection (``precision="single"`` in
:func:`~repro.perfmodel.scaling.predict_step_time`) halves *all* memory
traffic — the right upper bound, but not what an actual
:class:`~repro.ocean.precision.PrecisionPolicy` does: under the
``mixed`` preset only the tracer/momentum/vmix sweeps narrow while the
barotropic subcycle, the EOS and the depth-integral scans stay fp64.

This module prices a policy from what the model actually executes.
:func:`measure_family_shares` runs the instrumented model once at fp64
and splits the byte/flop totals by kernel family
(:data:`~repro.ocean.precision.KERNEL_FAMILIES`); scaling each family's
share by its policy dtype width then yields a
:class:`~repro.perfmodel.kernelcost.StepProfile` the existing roofline
consumes unchanged (:func:`policy_profile`), plus the halo-volume-
weighted wire word size (:func:`policy_halo_word`).  The flat
projection is retained only as a cross-check: a uniform ``single``
policy must reproduce it exactly (see
:func:`~repro.perfmodel.scaling.projection_crosscheck`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from math import fsum
from typing import Dict, Mapping

from ..ocean.config import ModelConfig
from .kernelcost import DEFAULT_PROFILE, StepProfile

#: Labels whose traffic the step profile books as 2-D (per barotropic
#: substep) rather than 3-D — must match ``measure_step_profile``.
_BARO_2D_LABELS = ("barotropic_continuity", "barotropic_momentum")

#: Family charged for kernel labels with no ``KERNEL_FAMILIES`` entry
#: (fused composites, future kernels): priced at the widest dtype so an
#: unmapped kernel can only make the prediction pessimistic.
FALLBACK_FAMILY = "barotropic"


@dataclass(frozen=True)
class FamilyShares:
    """How one fp64 step's traffic splits across kernel families.

    * ``bytes3 / flops3`` — fraction of the 3-D byte/flop totals by
      family (each map sums to 1; the split matches
      ``measure_step_profile``'s 2-D/3-D bookkeeping).
    * ``halo3`` — 3-D halo updates per step by the family of the field
      being exchanged (2-D halos are all barotropic by construction).
    """

    bytes3: Mapping[str, float]
    flops3: Mapping[str, float]
    halo3: Mapping[str, int] = field(
        default_factory=lambda: dict(_DEFAULT_HALO3))

    def __post_init__(self) -> None:
        for name in ("bytes3", "flops3"):
            total = fsum(getattr(self, name).values())
            if not 0.999 < total < 1.001:
                raise ValueError(
                    f"FamilyShares.{name} must sum to 1, got {total}")


#: 3-D halo updates per step by field family: u/v before and after the
#: barotropic update (momentum), plus 5 per tracer for the
#: diffuse-then-advect FCT scheme (see ``DEFAULT_PROFILE.halo3_per_step``).
_DEFAULT_HALO3: Dict[str, int] = {"momentum": 4, "tracer": 10}

#: Frozen fp64 measurement (tiny demo, 4 steps, serial backend) — the
#: live counterpart is :func:`measure_family_shares`; the benchmark
#: suite re-measures and asserts agreement.
DEFAULT_FAMILY_SHARES = FamilyShares(
    bytes3={
        "tracer": 0.2392,
        "momentum": 0.5578,
        "vmix": 0.0221,
        "barotropic": 0.0129,
        "eos": 0.0646,
        "scan": 0.1034,
    },
    flops3={
        "tracer": 0.4312,
        "momentum": 0.4229,
        "vmix": 0.0792,
        "barotropic": 0.0051,
        "eos": 0.0308,
        "scan": 0.0308,
    },
)


def measure_family_shares(size: str = "tiny", steps: int = 4) -> FamilyShares:
    """Run the real (fp64) model and split its traffic by kernel family.

    Mirrors ``measure_step_profile``: warm up past the Euler start step,
    reset the instrumentation, run ``steps`` leapfrog steps, then group
    the per-kernel byte/flop totals by ``KERNEL_FAMILIES``.  Labels the
    profile books as 2-D barotropic traffic are excluded from the 3-D
    shares; unmapped labels fall back to :data:`FALLBACK_FAMILY`.
    """
    from ..kokkos import Instrumentation, SerialBackend
    from ..ocean import LICOMKpp, demo
    from ..ocean.precision import FAMILIES, KERNEL_FAMILIES

    inst = Instrumentation()
    model = LICOMKpp(demo(size), backend=SerialBackend(inst=inst))
    model.run_steps(2)
    inst.reset()
    model.run_steps(steps)

    bytes3 = {fam: 0.0 for fam in FAMILIES}
    flops3 = {fam: 0.0 for fam in FAMILIES}
    for label, stats in inst.kernels.items():
        if label in _BARO_2D_LABELS:
            continue
        fam = KERNEL_FAMILIES.get(label, FALLBACK_FAMILY)
        bytes3[fam] += stats.bytes
        flops3[fam] += stats.flops
    tot_b = fsum(bytes3.values())
    tot_f = fsum(flops3.values())
    return FamilyShares(
        bytes3={fam: b / tot_b for fam, b in bytes3.items()},
        flops3={fam: f / tot_f for fam, f in flops3.items()},
    )


def _width(policy, family: str) -> float:
    """Family word size relative to fp64 (0.5 for fp32, 1.0 for fp64)."""
    return policy.family_dtype(family).itemsize / 8.0


def policy_profile(
    policy,
    profile: StepProfile = DEFAULT_PROFILE,
    shares: FamilyShares = DEFAULT_FAMILY_SHARES,
) -> StepProfile:
    """Reprice a step profile for ``policy`` from per-family byte shares.

    Memory traffic scales with each family's word width; flop counts,
    launch counts and halo-update counts are unchanged (narrowing does
    not change the arithmetic or the schedule, only the bytes moved —
    the paper's bandwidth-bound premise).  A uniform fp64 policy returns
    the profile untouched; a uniform fp32 policy reproduces the flat
    ``precision="single"`` halving exactly.
    """
    scale3 = fsum(frac * _width(policy, fam)
                  for fam, frac in shares.bytes3.items())
    scale2 = _width(policy, "barotropic")
    return replace(profile,
                   bytes3=profile.bytes3 * scale3,
                   bytes2_sub=profile.bytes2_sub * scale2)


def policy_halo_word(
    policy,
    cfg: ModelConfig,
    profile: StepProfile = DEFAULT_PROFILE,
    shares: FamilyShares = DEFAULT_FAMILY_SHARES,
) -> float:
    """Halo-volume-weighted mean wire word size [bytes] under ``policy``.

    The comm model prices all halo traffic with one ``word_bytes`` knob;
    under a mixed policy the 3-D tracer/momentum exchanges ship fp32
    while the 2-D barotropic subcycle stays fp64, so the effective word
    is the per-update boundary-volume weighted mean: each 3-D update
    moves ``nz`` points per boundary column, each of the
    ``nsub * halo2_per_sub`` 2-D updates moves one.
    """
    vol3 = {fam: n * cfg.nz for fam, n in shares.halo3.items()}
    vol2 = cfg.barotropic_substeps * profile.halo2_per_sub
    weighted = fsum(v * policy.family_dtype(fam).itemsize
                    for fam, v in vol3.items())
    weighted += vol2 * policy.family_dtype("barotropic").itemsize
    return weighted / (fsum(vol3.values()) + vol2)
