"""Communication cost model: halo updates under alpha-beta + pack/copy.

Models the three §V-D cost components of a halo update:

1. **pack/unpack** on the host (or via the Kokkos-accelerated kernels
   once optimized) — proportional to the boundary volume at host
   bandwidth, times a strategy factor;
2. **host<->device staging** — the paper's systems lack GPU-aware MPI,
   so on GPU machines every exchange crosses PCIe twice (D2H then H2D);
3. **wire time** — alpha-beta per message, with the tripolar-fold row
   contributing a *fixed* polar term that does not shrink with rank
   count (the Amdahl bottleneck of §V-D: "the cost of pack/unpack
   operations remains constant and does not benefit from
   parallelization as the computational scale increases").

The unoptimized (original) variants: element-loop pack (x ``PACK_NAIVE``
slower), per-level 3-D messages (``nz`` messages per neighbour instead
of 1), no computation-communication overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Tuple

from ..ocean.config import ModelConfig
from .machines import MachineSpec

#: Halo width (paper: two ghost + two real layers).
HALO = 2
#: Slowdown of the naive (pre-rewrite) pack relative to the optimized one.
#: Calibrated so the optimized-vs-original Sunway speedup at 1 km matches
#: the paper's 3.9x (see EXPERIMENTS.md, ablation A4).
PACK_NAIVE_FACTOR = 64.0
#: Redundant pack traffic of the original implementation (the paper
#: "analyzed and optimized the redundant packing/unpacking operations").
PACK_REDUNDANCY = 1.5
#: Fraction of the 3-D halo wire time hidden by overlap when optimized.
OVERLAP_HIDE = 0.7


def block_extents(cfg: ModelConfig, ranks: int) -> Tuple[int, int]:
    """(nyl, nxl) of a square-ish block decomposition over ``ranks``."""
    aspect = cfg.nx / cfg.ny
    npy = max(1, round(sqrt(ranks / aspect)))
    npx = max(1, ranks // npy)
    return max(1, cfg.ny // npy), max(1, cfg.nx // npx)


@dataclass(frozen=True)
class HaloCost:
    """Cost of one halo update for one rank [seconds]."""

    pack: float
    staging: float
    wire: float
    messages: int

    @property
    def total(self) -> float:
        return self.pack + self.staging + self.wire


def halo_update_cost(
    machine: MachineSpec,
    nyl: int,
    nxl: int,
    nz: int,
    optimized: bool = True,
    word_bytes: float = 8.0,
    aggregation: float = 1.0,
) -> HaloCost:
    """Cost of one (2-D when nz == 1) halo update on one rank.

    ``optimized`` selects the paper's §V-D implementation (sliced /
    Kokkos pack, transposed single-message 3-D exchange) versus the
    original (naive pack, per-level messages).

    ``aggregation`` models the fused multi-field fast path: when F
    semantic updates travel fused, each pays the full bandwidth term but
    only 1/F of the per-message latency (F fields share one message per
    neighbour per phase).
    """
    boundary_pts = 2 * HALO * (nyl + nxl + 4 * HALO) * nz
    nbytes = boundary_pts * word_bytes

    pack_factor = 1.0 if optimized else PACK_NAIVE_FACTOR * PACK_REDUNDANCY
    pack = 2.0 * nbytes * pack_factor / machine.effective_pack_bw  # pack + unpack

    staging = 0.0
    if machine.host_device_bw is not None:
        staging = 2.0 * nbytes / machine.host_device_bw  # D2H + H2D

    messages = 4 if (optimized or nz == 1) else 4 * nz
    if aggregation > 1.0:
        messages = max(1, round(messages / aggregation))
    wire = messages * machine.net_latency + nbytes / machine.net_bw
    return HaloCost(pack=pack, staging=staging, wire=wire, messages=messages)


def ledger_wire_time(machine: MachineSpec, ledger, crowd: float = 1.0) -> float:
    """Alpha-beta wire time of *measured* traffic (a TrafficLedger).

    Prices the ledger's actual message shape — count x latency plus
    volume / bandwidth — so predictions made from a fused run
    automatically reflect its aggregated messages.  ``crowd`` is the
    network-contention inflation applied to the latency term.
    """
    return (ledger.messages * machine.net_latency * crowd
            + ledger.bytes / machine.net_bw)


def ledger_message_summary(ledger) -> str:
    """Human-readable message-shape summary (for ablation artifacts)."""
    lines = [
        f"messages {ledger.messages}, volume {ledger.bytes / 1e6:.3f} MB, "
        f"mean size {ledger.mean_message_bytes():.0f} B"
    ]
    hist = ledger.size_histogram()
    if hist:
        lines.append("size histogram (upper-bound bytes: count):")
        for ub, n in hist.items():
            lines.append(f"  <= {ub:>10d}: {n}")
    for phase, (msgs, nbytes) in sorted(ledger.by_phase.items()):
        lines.append(f"phase {phase:<12s} {int(msgs):6d} msgs "
                     f"{nbytes / 1e6:10.3f} MB")
    return "\n".join(lines)


def polar_fixed_cost(
    machine: MachineSpec,
    cfg: ModelConfig,
    halo3_per_step: int,
    optimized: bool = True,
    word_bytes: float = 8.0,
) -> float:
    """The per-step serial polar-region pack term (does not scale with P).

    In polar regions the fold exchange packs O(nx * halo * nz) data per
    update regardless of rank count.  The optimized implementation cuts
    it by the pack rewrite; the original pays the naive-loop factor.
    """
    nbytes = cfg.nx * HALO * cfg.nz * word_bytes
    factor = machine.polar_factor
    if not optimized:
        factor *= PACK_NAIVE_FACTOR * PACK_REDUNDANCY
    return halo3_per_step * nbytes * factor / machine.effective_pack_bw


def comm_time_per_step(
    machine: MachineSpec,
    cfg: ModelConfig,
    ranks: int,
    halo3_per_step: int,
    halo2_per_sub: int,
    compute3_time: float = 0.0,
    optimized: bool = True,
    loadbalance_factor: float = 1.0,
    word_bytes: float = 8.0,
    aggregation: float = 1.0,
) -> float:
    """Total per-step communication time for one rank.

    ``compute3_time`` enables the overlap model: when optimized, the
    3-D halo wire+staging time partially hides behind the interior
    computation (it can never hide the pack, which is serial with the
    kernels on these systems).  ``loadbalance_factor`` (>1) inflates the
    step when the canuto imbalance is not corrected (original version).
    ``aggregation`` (>1) is the fused-halo message-aggregation factor:
    the mean number of semantic halo updates sharing one message (see
    :func:`halo_update_cost`), measured from a fused step's
    TrafficLedger as per-field messages / fused messages.
    """
    import math

    nyl, nxl = block_extents(cfg, ranks)
    nsub = cfg.barotropic_substeps

    h3 = halo_update_cost(machine, nyl, nxl, cfg.nz, optimized, word_bytes,
                          aggregation=aggregation)
    h2 = halo_update_cost(machine, nyl, nxl, 1, optimized, word_bytes,
                          aggregation=aggregation)

    # network contention grows slowly with the machine fraction in use
    nodes = max(1.0, ranks / machine.units_per_node)
    crowd = 1.0 + machine.contention * math.log2(nodes)

    wire3 = halo3_per_step * (h3.wire * crowd + h3.staging)
    if optimized:
        wire3 = max(0.0, wire3 - OVERLAP_HIDE * min(wire3, compute3_time))
    pack3 = halo3_per_step * h3.pack
    t2 = nsub * halo2_per_sub * (h2.pack + h2.staging + h2.wire * crowd)
    fixed = polar_fixed_cost(machine, cfg, halo3_per_step, optimized,
                             word_bytes)
    return (wire3 + pack3 + t2 + fixed) * loadbalance_factor
