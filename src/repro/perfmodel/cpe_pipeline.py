"""CPE DMA-pipeline model: the §V-C2 double-buffering optimization.

For ``advection_tracer`` on Sunway, the paper adopts "a double-buffered
technique that leverages the asynchronous mechanism of the Sunway
architecture between the CPE workload execution and DMA transfers".
This module prices a kernel's tile sweep through one CPE's pipeline:

* tile working set sized to LDM (via
  :func:`repro.kokkos.ldm.max_tile_points`, which reserves one buffer
  per pipeline stage),
* per-tile DMA time = descriptor latency + bytes / CG bandwidth share,
* per-tile compute time from the functor's declared flops/bytes,
* total sweep time from :func:`repro.kokkos.ldm.double_buffered_time`.

The A5 ablation benchmark sweeps arithmetic intensity and buffer count
to show where double buffering pays (its gain approaches 2x when DMA
and compute are balanced, and fades when either dominates).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kokkos.ldm import (
    DMAEngine,
    SW26010_LDM_BYTES,
    double_buffered_time,
    max_tile_points,
)
from .machines import get_machine


@dataclass(frozen=True)
class PipelineEstimate:
    """Cost of one kernel launch on one CPE's share of a core group."""

    tiles: int
    tile_points: int
    compute_per_tile: float
    transfer_per_tile: float
    total_time: float
    buffers: int

    @property
    def dma_bound(self) -> bool:
        return self.transfer_per_tile > self.compute_per_tile


def cpe_pipeline_time(
    points: int,
    bytes_per_point: float,
    flops_per_point: float,
    buffers: int = 2,
    num_cpes: int = 64,
    ldm_bytes: int = SW26010_LDM_BYTES,
    cpe_flops: float = 8.0e9,
    dma: DMAEngine | None = None,
    tile_points: int | None = None,
) -> PipelineEstimate:
    """Estimate a tile sweep's wall time on one CPE.

    ``points`` is the rank's iteration count; each CPE handles
    ``points / num_cpes`` of it in LDM-sized tiles.  ``cpe_flops`` is a
    single CPE's double-precision throughput; the DMA engine defaults to
    the SW26010 Pro's CG memory system shared evenly across the CPEs.
    """
    if dma is None:
        machine = get_machine("new_sunway")
        dma = DMAEngine(bandwidth=machine.mem_bw_unit / num_cpes)
    my_points = max(1, -(-points // num_cpes))
    if tile_points is None:
        # real CPE codes keep tiles well below the LDM ceiling so the
        # pipeline has enough stages to fill; 512 points is typical
        tile_points = min(512, max_tile_points(bytes_per_point, ldm_bytes,
                                               buffers=max(1, buffers)))
    tile_pts = min(my_points, tile_points)
    tiles = -(-my_points // tile_pts)
    transfer = dma.transfer_time(tile_pts * bytes_per_point)
    compute = tile_pts * flops_per_point / cpe_flops
    total = double_buffered_time(compute, transfer, tiles, buffers=buffers)
    return PipelineEstimate(
        tiles=tiles,
        tile_points=tile_pts,
        compute_per_tile=compute,
        transfer_per_tile=transfer,
        total_time=total,
        buffers=buffers,
    )


def double_buffer_speedup(
    points: int, bytes_per_point: float, flops_per_point: float,
    tile_points: int | None = None,
) -> float:
    """Single- vs double-buffered sweep-time ratio for one kernel."""
    single = cpe_pipeline_time(points, bytes_per_point, flops_per_point,
                               buffers=1, tile_points=tile_points)
    double = cpe_pipeline_time(points, bytes_per_point, flops_per_point,
                               buffers=2, tile_points=tile_points)
    return single.total_time / double.total_time
