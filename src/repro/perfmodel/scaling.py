"""SYPD prediction and scaling sweeps (Figs 7-9, Table V).

Combines the measured step profile (:mod:`.kernelcost`), the machine
registry (:mod:`.machines`) and the communication model
(:mod:`.network`) into end-to-end throughput predictions:

    SYPD = 86400 / (365 * steps_per_day * T_step)

with ``T_step = T_compute + T_comm`` for the slowest rank.  The same
functions drive the strong-scaling (Fig. 8 / Table V), weak-scaling
(Fig. 9), single-node portability (Fig. 7) and optimization-ablation
(§VIII, 2.7x / 3.9x) reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..ocean.config import ModelConfig
from .kernelcost import DEFAULT_PROFILE, StepProfile, compute_time_per_step
from .machines import MachineSpec, get_machine
from .network import block_extents, comm_time_per_step

#: Canuto load-imbalance step inflation when NOT load-balanced (§V-C1).
CANUTO_IMBALANCE = 1.12


def predict_step_time(
    cfg: ModelConfig,
    machine: MachineSpec | str,
    units: int,
    optimized: bool = True,
    fortran: bool = False,
    profile: StepProfile = DEFAULT_PROFILE,
    precision: object = "double",
    aggregation: float = 1.0,
    rank_imbalance: float = 1.0,
) -> float:
    """Wall seconds per baroclinic step on ``units`` ranks (slowest rank).

    ``precision`` prices the run's dtype choice two ways:

    * the flat strings ``"double"`` / ``"single"`` keep the historical
      SViii bound — ``"single"`` halves *all* memory traffic (compute,
      halos, polar pack) while flop rate and message counts are
      unchanged;
    * anything else (``"mixed"``, a ``{family: dtype}`` mapping, or a
      :class:`~repro.ocean.precision.PrecisionPolicy`) is resolved with
      :func:`~repro.ocean.precision.resolve_precision` and priced from
      the measured per-family byte shares
      (:mod:`repro.perfmodel.familycost`): each family's share of the
      traffic scales with its word width, and the halo word becomes the
      boundary-volume weighted mean.  A uniform fp32 policy reproduces
      the flat ``"single"`` numbers exactly (see
      :func:`projection_crosscheck`).

    ``aggregation`` (>1) models the fused multi-field halo fast path:
    the mean number of semantic halo updates sharing one wire message,
    measured from a fused run's TrafficLedger (per-field messages /
    fused messages).  It divides the per-message latency term only;
    volume is unchanged.

    ``rank_imbalance`` (>= 1) is the measured per-rank load imbalance
    (``max/mean`` grid points, from
    :func:`repro.perfmodel.aggregate.measured_load_imbalance` on real
    per-rank ledgers or
    :func:`~repro.perfmodel.aggregate.decomposition_load_imbalance`
    from a decomposition's ocean-point counts).  The slowest rank does
    that much more compute, so it scales the compute term; 1.0 —
    perfectly balanced ranks — reproduces the balanced prediction
    exactly.  This is orthogonal to the Canuto-specific ``optimized``
    inflation, which prices the *vertical-mixing* imbalance inside the
    communication model.
    """
    machine = get_machine(machine) if isinstance(machine, str) else machine
    if units < 1:
        raise ValueError("need at least one compute unit")
    if rank_imbalance < 1.0:
        raise ValueError(
            f"rank_imbalance is max/mean and must be >= 1, got {rank_imbalance}")
    if isinstance(precision, str) and precision in ("double", "single"):
        # flat SViii bound: uniform word, all traffic scales together
        word = 8.0 if precision == "double" else 4.0
        if precision == "single":
            from dataclasses import replace as _replace

            profile = _replace(profile, bytes3=profile.bytes3 * 0.5,
                               bytes2_sub=profile.bytes2_sub * 0.5)
    else:
        from ..ocean.precision import resolve_precision
        from .familycost import policy_halo_word, policy_profile

        policy = resolve_precision(precision)
        word = policy_halo_word(policy, cfg, profile)
        profile = policy_profile(policy, profile)
    n3 = cfg.grid_points / units
    n2 = cfg.horizontal_points / units
    nsub = cfg.barotropic_substeps
    t_comp = compute_time_per_step(profile, machine, n3, n2, nsub, fortran=fortran)
    t_comp *= rank_imbalance
    lb = 1.0 if optimized else CANUTO_IMBALANCE
    t_comm = comm_time_per_step(
        machine,
        cfg,
        units,
        profile.halo3_per_step,
        profile.halo2_per_sub,
        compute3_time=t_comp,
        optimized=optimized,
        loadbalance_factor=lb,
        word_bytes=word,
        aggregation=aggregation,
    )
    if units == 1:
        t_comm = 0.0
    return t_comp + t_comm


def sypd_from_step_time(cfg: ModelConfig, t_step: float) -> float:
    """Simulated years per wall-clock day given seconds per step."""
    steps_per_day = 86400.0 / cfg.dt_baroclinic
    wall_per_simday = steps_per_day * t_step
    return 86400.0 / (wall_per_simday * 365.0)


def predict_sypd(
    cfg: ModelConfig,
    machine: MachineSpec | str,
    units: int,
    optimized: bool = True,
    fortran: bool = False,
    profile: StepProfile = DEFAULT_PROFILE,
    precision: object = "double",
    aggregation: float = 1.0,
    rank_imbalance: float = 1.0,
) -> float:
    """End-to-end SYPD prediction."""
    m = get_machine(machine) if isinstance(machine, str) else machine
    return sypd_from_step_time(
        cfg, predict_step_time(cfg, m, units, optimized, fortran, profile,
                               precision=precision, aggregation=aggregation,
                               rank_imbalance=rank_imbalance)
    )


def mixed_precision_projection(
    cfg: ModelConfig,
    machine: MachineSpec | str,
    units: int,
    profile: StepProfile = DEFAULT_PROFILE,
) -> Tuple[float, float, float]:
    """(double SYPD, single SYPD, speedup) — the flat SViii bound.

    Retained as the *cross-check* of the per-family policy pricing
    (:func:`policy_projection`): it halves every byte, so no executable
    policy can beat it, and a uniform fp32 policy must reproduce it
    exactly — :func:`projection_crosscheck` asserts both.
    """
    d = predict_sypd(cfg, machine, units, profile=profile)
    s = predict_sypd(cfg, machine, units, profile=profile, precision="single")
    return d, s, s / d


def policy_projection(
    cfg: ModelConfig,
    machine: MachineSpec | str,
    units: int,
    policy: object = "mixed",
    profile: StepProfile = DEFAULT_PROFILE,
) -> Tuple[float, float, float]:
    """(double SYPD, policy SYPD, speedup) from per-family byte shares.

    The executable successor of :func:`mixed_precision_projection`:
    ``policy`` is anything :func:`~repro.ocean.precision
    .resolve_precision` accepts, and the throughput gain comes from the
    *measured* family split of the step's traffic rather than a uniform
    halving — under the ``mixed`` preset the fp64 barotropic/EOS/scan
    families keep their full byte cost.
    """
    d = predict_sypd(cfg, machine, units, profile=profile)
    p = predict_sypd(cfg, machine, units, profile=profile, precision=policy)
    return d, p, p / d


def projection_crosscheck(
    cfg: ModelConfig,
    machine: MachineSpec | str,
    units: int,
    profile: StepProfile = DEFAULT_PROFILE,
    rtol: float = 1.0e-9,
) -> dict:
    """Check the policy pricing against the retired flat projection.

    Two invariants tie the new per-family model to the historical SViii
    numbers: a uniform fp32 policy prices identically to the flat
    ``"single"`` path (same bytes, same wire word), and the ``mixed``
    preset — which keeps some families wide — can never project more
    speedup than the flat halving.  Returns the three speedups and
    raises :class:`ValueError` if either invariant fails.
    """
    d, s_flat, sp_flat = mixed_precision_projection(cfg, machine, units, profile)
    _, s_uni, sp_uni = policy_projection(cfg, machine, units, "single", profile)
    _, _, sp_mixed = policy_projection(cfg, machine, units, "mixed", profile)
    if abs(s_uni - s_flat) > rtol * s_flat:
        raise ValueError(
            f"uniform fp32 policy ({s_uni}) disagrees with the flat "
            f"single projection ({s_flat})")
    if sp_mixed > sp_flat * (1.0 + rtol):
        raise ValueError(
            f"mixed-policy speedup {sp_mixed} exceeds the flat fp32 "
            f"bound {sp_flat}")
    return {"double_sypd": d, "flat_single_speedup": sp_flat,
            "uniform_single_speedup": sp_uni, "mixed_speedup": sp_mixed}


@dataclass(frozen=True)
class ScalingPoint:
    """One row of a scaling table."""

    units: int
    cores: int
    sypd: float
    efficiency: float   # relative to the sweep's first point


def strong_scaling(
    cfg: ModelConfig,
    machine: MachineSpec | str,
    unit_counts: Sequence[int],
    optimized: bool = True,
    profile: StepProfile = DEFAULT_PROFILE,
) -> List[ScalingPoint]:
    """Fixed problem, growing resources (Fig. 8 / Table V).

    Parallel efficiency is computed exactly as the paper does: the
    speedup relative to the smallest configuration divided by the
    resource ratio.
    """
    m = get_machine(machine) if isinstance(machine, str) else machine
    rows: List[ScalingPoint] = []
    base_sypd: Optional[float] = None
    base_units: Optional[int] = None
    for units in unit_counts:
        sypd = predict_sypd(cfg, m, units, optimized=optimized, profile=profile)
        if base_sypd is None:
            base_sypd, base_units = sypd, units
            eff = 1.0
        else:
            eff = (sypd / base_sypd) / (units / base_units)
        rows.append(
            ScalingPoint(units=units, cores=m.cores(units), sypd=sypd, efficiency=eff)
        )
    return rows


def weak_scaling(
    machine: MachineSpec | str,
    cases: Sequence[Tuple[ModelConfig, int]],
    optimized: bool = True,
    profile: StepProfile = DEFAULT_PROFILE,
    aggregation: float = 1.0,
) -> List[ScalingPoint]:
    """Growing problem with (nearly) fixed per-rank load (Fig. 9).

    Weak efficiency follows the paper: the per-step *grind time*
    normalised by the per-rank workload, relative to the first case —
    so a perfectly weak-scaling code scores 1.0 even though the time
    steps are identical across cases (Table IV keeps dt fixed).

    ``aggregation`` (>1) applies the fused-halo message-aggregation
    factor to every case (see :func:`predict_step_time`), so the table
    reflects the aggregated message shape of the fused fast path.
    """
    m = get_machine(machine) if isinstance(machine, str) else machine
    rows: List[ScalingPoint] = []
    base: Optional[float] = None
    for cfg, units in cases:
        t = predict_step_time(cfg, m, units, optimized=optimized, profile=profile,
                              aggregation=aggregation)
        per_rank = cfg.grid_points / units
        grind = t / per_rank          # seconds per point per step
        if base is None:
            base = grind
        eff = base / grind
        rows.append(
            ScalingPoint(
                units=units,
                cores=m.cores(units),
                sypd=sypd_from_step_time(cfg, t),
                efficiency=eff,
            )
        )
    return rows


def single_node_units(machine: MachineSpec) -> int:
    """Ranks used in the paper's single-node Fig. 7 runs."""
    return machine.units_per_node


def portability_sypd(
    cfg: ModelConfig,
    machine: MachineSpec | str,
    profile: StepProfile = DEFAULT_PROFILE,
) -> Tuple[float, float, float]:
    """(kokkos_sypd, fortran_sypd, speedup) for one platform (Fig. 7)."""
    m = get_machine(machine) if isinstance(machine, str) else machine
    units = single_node_units(m)
    kokkos = predict_sypd(cfg, m, units, profile=profile)
    fortran = predict_sypd(cfg, m, units, fortran=True, profile=profile)
    return kokkos, fortran, kokkos / fortran


def optimization_speedup(
    cfg: ModelConfig,
    machine: MachineSpec | str,
    units: int,
    profile: StepProfile = DEFAULT_PROFILE,
) -> float:
    """Optimized-vs-original step-time ratio (§VIII: 2.7x at 2 km,
    3.9x at 1 km on the near-full Sunway system)."""
    m = get_machine(machine) if isinstance(machine, str) else machine
    t_opt = predict_step_time(cfg, m, units, optimized=True, profile=profile)
    t_orig = predict_step_time(cfg, m, units, optimized=False, profile=profile)
    return t_orig / t_opt
