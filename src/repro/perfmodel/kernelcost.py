"""Per-step kernel cost profile: measured counts -> roofline times.

The machine model never guesses what LICOMK++ does per step — it
*measures* it.  :func:`measure_step_profile` runs the real model at
laptop scale with instrumentation enabled and extracts per-grid-point
flop/byte totals plus the communication schedule (halo-update counts).
Because every kernel is resolution-independent, the per-point counts
are exact at the paper's kilometre-scale sizes; only the barotropic
subcycle length varies (Table III), which the profile keeps symbolic.

:data:`DEFAULT_PROFILE` is one such measurement, frozen so the scaling
experiments do not have to re-run the model; the benchmark suite
re-measures and asserts agreement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .machines import MachineSpec

#: Fraction of the per-launch fixed cost still paid when the launch is
#: served by the compiled tier (repro.kokkos.jit).  Compilation removes
#: the host-side interpretation of the sweep (slice walks, per-tile
#: dispatch) but not the launch itself — spawn/join on the CPEs or the
#: device kernel launch — so a compiled launch is modelled as a
#: constant fraction of the machine's ``launch_overhead``, calibrated
#: against the BENCH_step wallclock split.
JIT_DISPATCH_FRACTION = 0.3


@dataclass(frozen=True)
class StepProfile:
    """Per-baroclinic-step cost coefficients of the model.

    * ``bytes3 / flops3`` — per 3-D grid point, from all 3-D kernels
      (independent of the barotropic subcycle length).
    * ``bytes2_sub / flops2_sub`` — per 2-D (horizontal) point *per
      barotropic substep*.
    * ``launches_fixed / launches_per_sub`` — kernel launches per step.
    * ``halo3_per_step`` — 3-D halo updates per step (momentum x2,
      post-barotropic x2, and 5 per tracer for the diffuse-then-advect
      two-step shape-preserving scheme).
    * ``halo2_per_sub`` — 2-D halo updates per barotropic substep
      (eta, ub, vb).
    """

    bytes3: float
    flops3: float
    bytes2_sub: float
    flops2_sub: float
    launches_fixed: float
    launches_per_sub: float
    halo3_per_step: int
    halo2_per_sub: int
    #: Launches removed per step by the graph's fusion pass (flops/bytes
    #: are unchanged — fusion only merges launch boundaries).
    launches_fused_saved: float = 0.0
    #: Replayed launches per step served by the compiled tier
    #: (``repro.kokkos.jit``); each pays only ``JIT_DISPATCH_FRACTION``
    #: of the machine launch overhead.
    launches_compiled: float = 0.0

    def launches(self, nsub: int) -> float:
        return self.launches_fixed + self.launches_per_sub * nsub

    def launches_graph(self, nsub: int) -> float:
        """Launches per replayed step when the graph fusion pass is on."""
        return max(0.0, self.launches(nsub) - self.launches_fused_saved)

    def launch_overheads(self, nsub: int, graph: bool = False,
                         jit: bool = False) -> float:
        """Equivalent full-cost launches per step for the given knobs.

        With ``jit`` (compiled tier on, only meaningful under
        ``graph``), ``launches_compiled`` of the replayed launches are
        discounted to :data:`JIT_DISPATCH_FRACTION` of a launch each —
        the ``launches_compiled`` term that keeps predicted timelines
        honest about what replay actually dispatches.
        """
        launches = self.launches_graph(nsub) if graph else self.launches(nsub)
        if not (graph and jit):
            return launches
        compiled = min(self.launches_compiled, launches)
        return launches - (1.0 - JIT_DISPATCH_FRACTION) * compiled


#: Frozen measurement (tiny demo config, 4 steps, serial backend); see
#: ``measure_step_profile`` for the live version.  Units: bytes / flops
#: per point per step.
DEFAULT_PROFILE = StepProfile(
    bytes3=903.0,
    flops3=284.0,
    bytes2_sub=160.0,
    flops2_sub=48.0,
    launches_fixed=34.0,
    launches_per_sub=2.0,
    halo3_per_step=14,   # 4 momentum + 5 per tracer (diffused field, T*,
    halo2_per_sub=3,     # R+, R-, new) x 2 tracers
    launches_fused_saved=16.0,  # 10 fused groups (elementwise + halo-aware
                                # stencil fusion); see measure_graph_savings
    launches_compiled=30.0,     # full coverage on the tiny steady graph;
                                # see measure_jit_coverage
)


def measure_step_profile(size: str = "tiny", steps: int = 4) -> StepProfile:
    """Run the real model and extract its :class:`StepProfile`.

    Warms up past the Euler start step, resets the instrumentation, runs
    ``steps`` leapfrog steps, and normalises the counters.
    """
    from ..kokkos import Instrumentation, SerialBackend
    from ..ocean import LICOMKpp, demo

    cfg = demo(size)
    inst = Instrumentation()
    model = LICOMKpp(cfg, backend=SerialBackend(inst=inst))
    model.run_steps(2)
    inst.reset()
    model.halo.updates2d = 0
    model.halo.updates3d = 0
    model.run_steps(steps)

    n3 = cfg.grid_points
    n2 = cfg.horizontal_points
    nsub = cfg.barotropic_substeps
    baro_labels = ("barotropic_continuity", "barotropic_momentum")
    bytes2 = sum(inst.kernels[k].bytes for k in baro_labels if k in inst.kernels)
    flops2 = sum(inst.kernels[k].flops for k in baro_labels if k in inst.kernels)
    bytes3 = inst.total_bytes - bytes2
    flops3 = inst.total_flops - flops2
    launches = inst.total_launches
    launches_per_sub = 2.0
    return StepProfile(
        bytes3=bytes3 / steps / n3,
        flops3=flops3 / steps / n3,
        bytes2_sub=bytes2 / steps / n2 / nsub,
        flops2_sub=flops2 / steps / n2 / nsub,
        launches_fixed=launches / steps - launches_per_sub * nsub,
        launches_per_sub=launches_per_sub,
        halo3_per_step=round(model.halo.updates3d / steps),
        halo2_per_sub=round(model.halo.updates2d / steps / nsub),
    )


def measure_graph_savings(size: str = "tiny", steps: int = 3) -> float:
    """Launches per step removed by graph fusion, measured live.

    Runs the model with step-graph capture enabled and reads the sealed
    steady-state graph's captured-vs-replayed launch counts — the same
    introspection the A4 ablation reports.
    """
    from ..kokkos import Instrumentation, SerialBackend
    from ..ocean import LICOMKpp, demo
    from ..ocean.model import ModelParams

    cfg = demo(size)
    model = LICOMKpp(cfg, backend=SerialBackend(inst=Instrumentation()),
                     params=ModelParams(graph=True))
    model.run_steps(max(2, steps))
    steady = [g for (startup, _), g in model._graphs.items() if not startup]
    graph = steady[0] if steady else next(iter(model._graphs.values()))
    return float(graph.captured_launches - graph.launches_per_replay)


def measure_jit_coverage(size: str = "tiny", steps: int = 3) -> float:
    """Replayed launches per step on the compiled tier, measured live.

    The live counterpart of ``DEFAULT_PROFILE.launches_compiled``:
    steps the real model with graph capture and the compiled tier on
    and reads the sealed steady-state graph's per-kernel tiers.
    """
    from ..kokkos import Instrumentation, SerialBackend
    from ..ocean import LICOMKpp, demo
    from ..ocean.model import ModelParams

    cfg = demo(size)
    model = LICOMKpp(cfg, backend=SerialBackend(inst=Instrumentation()),
                     params=ModelParams(graph=True, jit=True))
    model.run_steps(max(2, steps))
    steady = [g for (startup, _), g in model._graphs.items() if not startup]
    graph = steady[0] if steady else next(iter(model._graphs.values()))
    return float(graph.compiled_launches)


def crosscheck_declared_costs(bytes_lo: float = 0.9, bytes_hi: float = 2.0):
    """Static cross-check of the declared kernel costs feeding this model.

    The roofline inputs are only as honest as each kernel's
    ``bytes_per_point`` declaration.  This asks ``repro.analysis`` for
    the statically *extracted* footprint of every registered kernel and
    returns the :class:`~repro.analysis.StaticKernelCost` records whose
    declaration falls outside the ``[bytes_lo x perfect-cache bound,
    bytes_hi x cold-cache bound]`` interval — an empty list means the
    instrumentation totals (and so :data:`DEFAULT_PROFILE`) rest on
    declarations consistent with what the kernel bodies actually touch.
    """
    from ..analysis import LintConfig, collect_footprints, static_cost

    offenders = []
    for fp in collect_footprints(LintConfig()):
        if fp.error is not None:
            continue
        sc = static_cost(fp)
        hi_bound = bytes_hi * max(sc.counted_bytes, sc.counted_bytes_min)
        if not (bytes_lo * sc.counted_bytes_min <= sc.declared_bytes
                <= hi_bound):
            offenders.append(sc)
    return offenders


def compute_time_per_step(
    profile: StepProfile,
    machine: MachineSpec,
    points3_per_unit: float,
    points2_per_unit: float,
    nsub: int,
    fortran: bool = False,
    graph: bool = False,
    jit: bool = False,
) -> float:
    """Roofline time of one rank's computation for one baroclinic step.

    The ocean model is memory-bandwidth bound on every system (§VII-D:
    "very low computation-to-memory ratio"), so the roofline is
    ``max(bytes/BW, flops/peak)`` plus kernel-launch overhead.  The
    ``fortran`` flag models the original LICOM3 baseline: host-only
    execution at the machine's host bandwidth and Fortran efficiency.
    ``graph`` models step-graph replay with fusion: the flop/byte work
    is unchanged, only ``launches_fused_saved`` fewer launch overheads
    are paid per step.  ``jit`` additionally discounts the
    ``launches_compiled`` replayed launches to
    :data:`JIT_DISPATCH_FRACTION` of a launch overhead each.
    """
    if fortran:
        bw = machine.host_bw * machine.host_efficiency
        peak = machine.peak_flops_unit * machine.units_per_node  # unused path
        bytes_total = (
            profile.bytes3 * points3_per_unit * machine.units_per_node
            + profile.bytes2_sub * points2_per_unit * machine.units_per_node * nsub
        )
        return bytes_total / bw
    bw = machine.effective_bw_unit
    peak = machine.peak_flops_unit
    t3 = max(
        profile.bytes3 * points3_per_unit / bw,
        profile.flops3 * points3_per_unit / peak,
    )
    t2 = nsub * max(
        profile.bytes2_sub * points2_per_unit / bw,
        profile.flops2_sub * points2_per_unit / peak,
    )
    t_launch = profile.launch_overheads(nsub, graph, jit) \
        * machine.launch_overhead
    return t3 + t2 + t_launch
