"""Per-component step-time breakdown (the §VII-D analysis, quantified).

The paper explains why the new Sunway underperforms ORISE despite more
cores with three observations — memory-access bottleneck, hotspot
dispersion (per-kernel fixed costs), communication overhead.  This
module decomposes the predicted step time into exactly those components
for any (configuration, machine, scale), so the argument can be read off
a table instead of asserted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..ocean.config import ModelConfig
from .kernelcost import DEFAULT_PROFILE, StepProfile
from .machines import MachineSpec, get_machine
from .network import OVERLAP_HIDE, block_extents, halo_update_cost, polar_fixed_cost


@dataclass(frozen=True)
class StepBreakdown:
    """Seconds per baroclinic step, by component (one rank)."""

    compute3: float      # 3-D kernels (memory-bandwidth bound)
    compute2: float      # barotropic 2-D substeps
    launches: float      # per-kernel fixed costs (hotspot dispersion)
    pack: float          # halo pack/unpack on the host path
    staging: float       # host<->device copies (no GPU-aware MPI)
    wire: float          # network alpha-beta (after overlap hiding)
    polar: float         # fixed polar-pack Amdahl term
    total: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "compute3": self.compute3,
            "compute2": self.compute2,
            "launches": self.launches,
            "pack": self.pack,
            "staging": self.staging,
            "wire": self.wire,
            "polar": self.polar,
            "total": self.total,
        }

    @property
    def comm_fraction(self) -> float:
        comm = self.pack + self.staging + self.wire + self.polar
        return comm / self.total if self.total else 0.0


def step_breakdown(
    cfg: ModelConfig,
    machine: MachineSpec | str,
    units: int,
    profile: StepProfile = DEFAULT_PROFILE,
    graph: bool = False,
    jit: bool = False,
) -> StepBreakdown:
    """Decompose the optimized step time (mirrors ``predict_step_time``).

    ``graph`` charges the post-fusion launch count of step-graph replay
    (``profile.launches_graph``); ``jit`` additionally discounts the
    compiled launches (``profile.launch_overheads``); all other
    components are unchanged.
    """
    m = get_machine(machine) if isinstance(machine, str) else machine
    n3 = cfg.grid_points / units
    n2 = cfg.horizontal_points / units
    nsub = cfg.barotropic_substeps

    bw = m.effective_bw_unit
    peak = m.peak_flops_unit
    t3 = max(profile.bytes3 * n3 / bw, profile.flops3 * n3 / peak)
    t2 = nsub * max(profile.bytes2_sub * n2 / bw, profile.flops2_sub * n2 / peak)
    t_launch = profile.launch_overheads(nsub, graph, jit) * m.launch_overhead

    if units == 1:
        return StepBreakdown(t3, t2, t_launch, 0.0, 0.0, 0.0, 0.0,
                             t3 + t2 + t_launch)

    nyl, nxl = block_extents(cfg, units)
    h3 = halo_update_cost(m, nyl, nxl, cfg.nz, optimized=True)
    h2 = halo_update_cost(m, nyl, nxl, 1, optimized=True)
    nodes = max(1.0, units / m.units_per_node)
    crowd = 1.0 + m.contention * math.log2(nodes)

    wire3 = profile.halo3_per_step * (h3.wire * crowd + h3.staging)
    wire3 = max(0.0, wire3 - OVERLAP_HIDE * min(wire3, t3 + t2 + t_launch))
    pack = profile.halo3_per_step * h3.pack \
        + nsub * profile.halo2_per_sub * h2.pack
    staging = nsub * profile.halo2_per_sub * h2.staging
    wire = wire3 + nsub * profile.halo2_per_sub * h2.wire * crowd
    polar = polar_fixed_cost(m, cfg, profile.halo3_per_step, optimized=True)
    total = t3 + t2 + t_launch + pack + staging + wire + polar
    return StepBreakdown(t3, t2, t_launch, pack, staging, wire, polar, total)


def format_breakdown_table(
    cfg: ModelConfig,
    cases: Sequence[tuple],
) -> str:
    """Render breakdowns for (machine, units) cases side by side."""
    rows: List[str] = [
        f"{'component':<12s}" + "".join(
            f"{name}@{units:<12d}"[:20].rjust(22) for name, units in cases
        )
    ]
    breakdowns = [step_breakdown(cfg, name, units) for name, units in cases]
    for key in ("compute3", "compute2", "launches", "pack", "staging",
                "wire", "polar", "total"):
        vals = "".join(f"{b.as_dict()[key] * 1e3:>20.2f}ms" for b in breakdowns)
        rows.append(f"{key:<12s}{vals}")
    fracs = "".join(f"{b.comm_fraction * 100:>20.1f}% " for b in breakdowns)
    rows.append(f"{'comm share':<12s}{fracs}")
    return "\n".join(rows)
