"""Merging per-rank ledgers into the job-level view (§VI-C).

With :class:`~repro.kokkos.context.ExecutionContext` giving every rank
its own :class:`~repro.kokkos.instrument.Instrumentation`, the paper's
job-level numbers (total flops, transfer volumes, workspace traffic)
are recovered by folding the per-rank ledgers back together — and the
*spread* across ranks is exactly the measured load imbalance the
scaling model's ``rank_imbalance`` term consumes.

:func:`aggregate` accepts contexts, models, or bare ``Instrumentation``
objects interchangeably (anything exposing ``.inst`` or being one).
When ranks are balanced, predictions driven by the merged ledger equal
the single-ledger predictions exactly: merging is a pure sum and
:func:`load_imbalance` is 1.0.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..kokkos.instrument import Instrumentation, get_instrumentation


def _resolve(obj) -> Instrumentation:
    if isinstance(obj, Instrumentation):
        return obj
    for attr in ("inst", "context"):          # context/space, or model
        owner = getattr(obj, attr, None)
        if owner is not None:
            inst = get_instrumentation(owner)
            if isinstance(inst, Instrumentation):
                return inst
    raise TypeError(
        f"cannot resolve an Instrumentation from {type(obj).__name__}")


def aggregate(contexts: Iterable) -> Instrumentation:
    """Merge per-rank ledgers into one job-level ``Instrumentation``.

    ``contexts`` may hold :class:`ExecutionContext` objects, models, or
    ``Instrumentation`` instances.  The inputs are left untouched; the
    returned ledger's totals are the exact sums of the per-rank totals,
    so on a balanced workload it reproduces the single shared-ledger
    run bit for bit.
    """
    merged = Instrumentation()
    for ctx in contexts:
        merged.merge_from(_resolve(ctx))
    return merged


def merge_traffic(ledgers: Iterable):
    """Merge per-rank :class:`~repro.parallel.comm.TrafficLedger` objects
    into one fresh job-level ledger.

    The traffic analog of :func:`aggregate`: process-backed worlds hand
    back one ledger per rank (``world.rank_traffic``), and their merged
    view must equal the thread-mode world ledger exactly — every send is
    recorded once on its sending rank in both modes.
    """
    from ..parallel.comm import TrafficLedger

    merged = TrafficLedger()
    for ledger in ledgers:
        if ledger is not None:
            merged.merge_from(ledger)
    return merged


def rank_points(contexts: Iterable) -> List[int]:
    """Grid points visited per rank — the measured per-rank load."""
    return [_resolve(ctx).total_points for ctx in contexts]


def load_imbalance(counts: Sequence[float]) -> float:
    """``max / mean`` of per-rank load (1.0 when empty or all-zero).

    Matches the convention of
    :func:`repro.parallel.loadbalance.imbalance_stats`: the slowest
    rank's inflation over the balanced ideal.
    """
    counts = [float(c) for c in counts]
    if not counts:
        return 1.0
    mean = sum(counts) / len(counts)
    if mean <= 0.0:
        return 1.0
    return max(counts) / mean


def measured_load_imbalance(contexts: Iterable) -> float:
    """Load imbalance from the ranks' recorded point counts."""
    return load_imbalance(rank_points(contexts))


def decomposition_load_imbalance(decomp, ocean_mask) -> float:
    """Predicted imbalance for a decomposition before running it.

    Uses the real ocean-point counts per rank from
    :func:`repro.parallel.loadbalance.imbalance_stats` — the same
    quantity :func:`measured_load_imbalance` recovers from ledgers
    after a run — so the scaling model can price imbalance at planning
    time.
    """
    from ..parallel.loadbalance import imbalance_stats

    return imbalance_stats(decomp, ocean_mask).imbalance_factor
