"""Anchor-point calibration of the machine model.

The roofline/alpha-beta model has five calibrated parameters per
machine — everything else is hardware spec (Table II) or measured from
the running model:

=================  =====================================================
Parameter          Meaning
=================  =====================================================
mem_efficiency     achieved fraction of device/CG memory bandwidth for
                   LICOMK++'s scattered stencils
host_efficiency    ditto for the host-only Fortran LICOM3 baseline
launch_overhead    per-kernel fixed cost (launch + small-kernel
                   inefficiency; dominates the latency-bound 100-km
                   single-node runs)
polar_factor       magnitude of the non-parallelizable polar pack term
                   (the Amdahl bottleneck of §V-D, proportional to
                   nx * nz)
contention         wire-time growth per log2(nodes) in use
pack_bw            effective pack/unpack bandwidth
=================  =====================================================

The constants frozen in :mod:`.machines` are a least-squares fit (in
log space, Nelder-Mead) against these anchors:

* Fig. 7 single-node SYPD, Kokkos and Fortran (all four machines);
* Table V 1-km and 2-km strong-scaling SYPD (ORISE and New Sunway);
* Fig. 9 weak-scaling final efficiency (ORISE 85.6 %, Sunway 91.2 %).

The ORISE 10-km curve is internally inconsistent with the 1-km curve in
absolute per-point cost (43 vs 4.5 ns/point in the paper's own Table V)
and is therefore *not* fitted — it is reported as a known deviation in
EXPERIMENTS.md.  Everything not in the anchor list — who wins, the
weak-vs-strong contrast, intermediate points, optimized-vs-original
ratios at 2 km — is prediction, not fit.

:func:`validate_all` recomputes every anchor with the frozen constants;
the test-suite asserts the agreements documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..ocean.config import PAPER_CONFIGS, WEAK_SCALING_CONFIGS
from .machines import MACHINES
from .scaling import portability_sypd, predict_sypd, strong_scaling, weak_scaling

#: Fig. 7 anchors: (kokkos SYPD, fortran SYPD) on one node at 100 km.
FIG7_ANCHORS: Dict[str, Tuple[float, float]] = {
    "gpu_workstation": (317.73, 317.73 / 7.08),
    "orise": (180.56, 180.56 / 11.42),
    "new_sunway": (22.22, 22.22 / 11.45),
    "taishan": (63.01, 63.01 / 1.03),
}

#: Table V strong-scaling anchors: config -> (units, paper SYPD values).
#: Sunway unit counts are cores / 65 (1 MPE + 64 CPEs per rank).
STRONG_ANCHORS: Dict[str, List[Tuple[str, Tuple[int, ...], Tuple[float, ...]]]] = {
    "orise": [
        ("eddy_10km", (40, 160, 320, 640, 1000),
         (1.009, 3.984, 6.880, 10.794, 13.543)),
        ("km_2km_fulldepth", (4000, 8000, 12000, 16000),
         (0.912, 1.386, 1.577, 1.779)),
        ("km_1km", (4000, 8000, 12000, 16000),
         (0.765, 1.248, 1.486, 1.701)),
    ],
    "new_sunway": [
        ("eddy_10km", (160, 300, 480, 780, 1560),
         (0.437, 0.780, 1.165, 1.761, 3.312)),
        ("km_2km_fulldepth", (78000, 159480, 288000, 576000),
         (0.264, 0.456, 0.692, 0.992)),
        ("km_1km", (77750, 155520, 307800, 590250),
         (0.252, 0.426, 0.709, 1.047)),
    ],
}

#: Fig. 9 weak-scaling final efficiencies at 1 km.
WEAK_ANCHORS: Dict[str, float] = {"orise": 0.856, "new_sunway": 0.912}


@dataclass(frozen=True)
class AnchorCheck:
    """One paper-vs-model comparison row."""

    machine: str
    anchor: str
    paper: float
    predicted: float

    @property
    def ratio(self) -> float:
        return self.predicted / self.paper if self.paper else float("inf")


def weak_cases(machine: str):
    """Table IV (config, ranks) pairs for a machine."""
    if machine == "new_sunway":
        return [(c, cores // 65) for c, _gpus, cores in WEAK_SCALING_CONFIGS]
    return [(c, gpus) for c, gpus, _cores in WEAK_SCALING_CONFIGS]


def validate_all() -> List[AnchorCheck]:
    """Recompute every anchor with the frozen calibration constants."""
    cfg100 = PAPER_CONFIGS["coarse_100km"]
    rows: List[AnchorCheck] = []
    for name, (k_target, f_target) in FIG7_ANCHORS.items():
        k, f, _ = portability_sypd(cfg100, name)
        rows.append(AnchorCheck(name, "fig7_kokkos_sypd", k_target, k))
        rows.append(AnchorCheck(name, "fig7_fortran_sypd", f_target, f))
    for name, curves in STRONG_ANCHORS.items():
        for cfg_name, units, targets in curves:
            cfg = PAPER_CONFIGS[cfg_name]
            for u, t in zip(units, targets):
                rows.append(AnchorCheck(
                    name, f"tableV_{cfg_name}_{u}u_sypd", t,
                    predict_sypd(cfg, name, u)))
            eff = strong_scaling(cfg, name, units)[-1].efficiency
            paper_eff = (targets[-1] / targets[0]) / (units[-1] / units[0])
            rows.append(AnchorCheck(
                name, f"tableV_{cfg_name}_final_efficiency", paper_eff, eff))
    for name, eff_target in WEAK_ANCHORS.items():
        eff = weak_scaling(name, weak_cases(name))[-1].efficiency
        rows.append(AnchorCheck(name, "fig9_weak_final_efficiency", eff_target, eff))
    return rows


def validation_report() -> str:
    """Human-readable paper-vs-model table (EXPERIMENTS.md source)."""
    rows = validate_all()
    lines = [f"{'machine':<16s} {'anchor':<40s} {'paper':>10s} {'model':>10s} {'ratio':>7s}"]
    for r in rows:
        lines.append(
            f"{r.machine:<16s} {r.anchor:<40s} {r.paper:>10.3f} "
            f"{r.predicted:>10.3f} {r.ratio:>7.2f}"
        )
    return "\n".join(lines)
