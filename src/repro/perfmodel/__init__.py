"""``repro.perfmodel`` — the machine model regenerating the evaluation."""

from .machines import MACHINES, MachineSpec, SUPPORT_MATRIX, get_machine, support_matrix_rows
from .kernelcost import DEFAULT_PROFILE, StepProfile, compute_time_per_step, measure_step_profile
from .network import (
    HALO,
    HaloCost,
    block_extents,
    comm_time_per_step,
    halo_update_cost,
    ledger_message_summary,
    ledger_wire_time,
    polar_fixed_cost,
)
from .aggregate import (
    aggregate,
    decomposition_load_imbalance,
    load_imbalance,
    measured_load_imbalance,
    rank_points,
)
from .breakdown import StepBreakdown, format_breakdown_table, step_breakdown
from .cpe_pipeline import PipelineEstimate, cpe_pipeline_time, double_buffer_speedup
from .related_work import RELATED_WORK, RelatedWorkPoint, kilometer_scale_realistic_leaders
from .scheduler import (
    JobQuote,
    PlatformOption,
    choose_platform,
    format_schedule,
    quote_job,
    throughput_options,
)
from .familycost import (
    DEFAULT_FAMILY_SHARES,
    FamilyShares,
    measure_family_shares,
    policy_halo_word,
    policy_profile,
)
from .scaling import (
    CANUTO_IMBALANCE,
    ScalingPoint,
    mixed_precision_projection,
    policy_projection,
    projection_crosscheck,
    optimization_speedup,
    portability_sypd,
    predict_step_time,
    predict_sypd,
    strong_scaling,
    sypd_from_step_time,
    weak_scaling,
)

__all__ = [
    "MachineSpec", "MACHINES", "SUPPORT_MATRIX", "get_machine", "support_matrix_rows",
    "StepProfile", "DEFAULT_PROFILE", "measure_step_profile", "compute_time_per_step",
    "HaloCost", "halo_update_cost", "comm_time_per_step", "polar_fixed_cost",
    "block_extents", "HALO", "ledger_wire_time", "ledger_message_summary",
    "aggregate", "rank_points", "load_imbalance", "measured_load_imbalance",
    "decomposition_load_imbalance",
    "predict_sypd", "predict_step_time", "sypd_from_step_time",
    "strong_scaling", "weak_scaling", "ScalingPoint",
    "portability_sypd", "optimization_speedup", "CANUTO_IMBALANCE",
    "mixed_precision_projection", "policy_projection", "projection_crosscheck",
    "FamilyShares", "DEFAULT_FAMILY_SHARES", "measure_family_shares",
    "policy_profile", "policy_halo_word",
    "StepBreakdown", "step_breakdown", "format_breakdown_table",
    "PipelineEstimate", "cpe_pipeline_time", "double_buffer_speedup",
    "PlatformOption", "choose_platform", "throughput_options", "format_schedule",
    "JobQuote", "quote_job",
    "RELATED_WORK", "RelatedWorkPoint", "kilometer_scale_realistic_leaders",
]
