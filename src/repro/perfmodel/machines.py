"""Machine registry: Tables I and II of the paper.

Four systems, one :class:`MachineSpec` each.  A *unit* is the natural
per-rank compute resource: one GPU (workstation, ORISE), one core group
(new Sunway: 1 MPE + 64 CPEs), or one core pair (Taishan).  The specs
follow Table II and §VI-A; values not printed in the paper (e.g. DP
peak of the HIP GPU) use the public figures of the named comparable
part (AMD MI60).

``EFFICIENCY_*`` factors are the per-machine calibration constants of
the roofline model: the achieved fraction of peak memory bandwidth for
LICOMK++'s scattered stencil access.  They are fitted once against the
paper's single-node Fig. 7 anchors (see ``calibration.py``) and reused
unchanged for every scaling prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import UnknownMachineError


@dataclass(frozen=True)
class MachineSpec:
    """One system of Table II."""

    name: str
    description: str
    programming_model: str          # Table I intranode model
    kokkos_support: str             # Table I Kokkos column
    units_per_node: int             # GPUs / core groups / ... per node
    cores_per_unit: int             # for "cores" accounting (Sunway: 65)
    peak_flops_unit: float          # DP flops/s per unit
    mem_bw_unit: float              # bytes/s per unit
    launch_overhead: float          # s per kernel launch
    host_bw: float                  # bytes/s host memory (pack/unpack path)
    host_device_bw: Optional[float]  # bytes/s PCIe/DMA (None if unified)
    net_bw: float                   # bytes/s injection per node
    net_latency: float              # s per message
    mem_efficiency: float           # achieved fraction of mem_bw (calibrated)
    host_efficiency: float          # ditto for the Fortran/host baseline
    polar_factor: float = 1.0       # polar pack Amdahl-term multiplier (calibrated)
    contention: float = 0.0         # wire-time growth per log2(nodes) (calibrated)
    pack_bw: Optional[float] = None  # effective pack/unpack bandwidth (calibrated;
                                     # defaults to host_bw)

    @property
    def effective_pack_bw(self) -> float:
        return self.pack_bw if self.pack_bw is not None else self.host_bw

    @property
    def effective_bw_unit(self) -> float:
        return self.mem_bw_unit * self.mem_efficiency

    def cores(self, units: int) -> int:
        return units * self.cores_per_unit


#: The four systems of Table II.  ``mem_efficiency`` / ``host_efficiency``
#: come from the Fig. 7 calibration (see EXPERIMENTS.md for the fit).
MACHINES: Dict[str, MachineSpec] = {
    "gpu_workstation": MachineSpec(
        name="gpu_workstation",
        description="2x Xeon Gold 6240R + 4x Tesla V100 (CUDA)",
        programming_model="CUDA",
        kokkos_support="Yes",
        units_per_node=4,
        cores_per_unit=1,
        peak_flops_unit=7.0e12,
        mem_bw_unit=887.9e9,          # paper, §VII-D
        launch_overhead=8.0e-6,
        host_bw=2.0e11,
        host_device_bw=12.0e9,
        net_bw=12.5e9,
        net_latency=2.0e-6,
        mem_efficiency=0.05711,       # calibrated: Fig 7, 317.73 SYPD
        host_efficiency=0.13085,      # calibrated: Fig 7, 7.08x speedup
    ),
    "orise": MachineSpec(
        name="orise",
        description="4-way 8-core x86 CPU + 4x HIP GPGPU (~MI60) per node",
        programming_model="HIP",
        kokkos_support="Yes",
        units_per_node=4,
        cores_per_unit=1,
        peak_flops_unit=6.6e12,
        mem_bw_unit=1024.0e9,         # MI60-class HBM2
        launch_overhead=325.8e-6,     # calibrated: per-kernel fixed cost
        host_bw=1.0e11,
        host_device_bw=16.0e9,        # paper: 32-bit PCIe DMA, 16 GB/s
        net_bw=25.0e9,                # paper: 25 GB/s network
        net_latency=3.0e-6,
        mem_efficiency=0.34185,       # calibrated: Table V 1-km anchors
        host_efficiency=0.09177,      # calibrated: Fig 7, 11.42x speedup
        polar_factor=0.5229,          # calibrated: Table V 1-km efficiency
        contention=0.0003,            # calibrated: Fig 9 weak scaling
        pack_bw=101.0e9,              # calibrated: pack/unpack path
    ),
    "new_sunway": MachineSpec(
        name="new_sunway",
        description="SW26010 Pro: 6 core groups x (1 MPE + 64 CPEs), Athread",
        programming_model="Athread",
        kokkos_support="Yes (This work)",
        units_per_node=6,             # core groups per processor/node
        cores_per_unit=65,            # 1 MPE + 64 CPEs
        peak_flops_unit=575.0e9,      # ~3.45 Tflops/processor over 6 CGs
        mem_bw_unit=51.2e9,           # paper: 51.2 GB/s per CG
        launch_overhead=328.8e-6,     # calibrated: CPE spawn + registry match
        host_bw=51.2e9,
        host_device_bw=None,          # unified memory space (paper §V-B)
        net_bw=14.0e9,
        net_latency=4.0e-6,
        mem_efficiency=0.05211,       # calibrated: Table V 1-km anchors
        host_efficiency=0.02194,      # calibrated: Fig 7, 11.45x speedup
        polar_factor=0.0951,          # calibrated: Table V 1-km efficiency
        contention=0.0,               # calibrated: Fig 9 weak scaling
        pack_bw=49.588e9,             # MPE-side pack bandwidth
    ),
    "taishan": MachineSpec(
        name="taishan",
        description="2x Huawei Taishan 2280 (128 ARM cores), OpenMP",
        programming_model="OpenMP",
        kokkos_support="Yes",
        units_per_node=64,            # model ranks (2 cores per rank)
        cores_per_unit=2,
        peak_flops_unit=4.2e10,
        mem_bw_unit=5.3e9,            # ~340 GB/s node over 64 units
        launch_overhead=1.0e-6,
        host_bw=3.4e11,
        host_device_bw=None,
        net_bw=12.5e9,
        net_latency=2.0e-6,
        mem_efficiency=0.10818,       # calibrated: Fig 7, 63.01 SYPD
        host_efficiency=0.10467,      # calibrated: Fig 7, 1.03x speedup
    ),
}

#: Table I — programming models and Kokkos support of the major modern
#: architectures in the TOP500 since 2010.
SUPPORT_MATRIX: Tuple[Tuple[str, str, str], ...] = (
    ("Intel coprocessors", "OpenMP", "Yes"),
    ("ARM CPUs", "OpenMP", "Yes"),
    ("NVIDIA GPUs", "CUDA", "Yes"),
    ("AMD GPUs", "HIP", "Yes"),
    ("Sunway many-cores", "Athread", "Yes (This work)"),
)


def get_machine(name: str) -> MachineSpec:
    """Look up a machine by name (raises :class:`UnknownMachineError`)."""
    try:
        return MACHINES[name]
    except KeyError:
        raise UnknownMachineError(
            f"unknown machine {name!r}; choose from {sorted(MACHINES)}"
        ) from None


def support_matrix_rows() -> Tuple[Tuple[str, str, str], ...]:
    """Table I rows as (architecture, programming model, Kokkos support)."""
    return SUPPORT_MATRIX
