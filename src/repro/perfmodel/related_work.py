"""Fig. 2 — the high-resolution ocean-modelling landscape (§IV).

A structured dataset of the prior large-scale efforts the paper plots,
plus this work's two points.  The figure regenerator prints/plots
resolution vs SYPD with system annotations; the test-suite checks the
claim the figure makes: LICOMK++ is the only *realistic global* ocean
model at kilometre resolution above 1 SYPD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class RelatedWorkPoint:
    """One system in the Fig. 2 landscape."""

    name: str
    year: int
    system: str
    resolution_km: float
    sypd: float
    resources: str
    realistic: bool          # realistic global ocean setup?
    ocean: bool              # ocean model (vs atmosphere)?
    this_work: bool = False


RELATED_WORK: Tuple[RelatedWorkPoint, ...] = (
    RelatedWorkPoint(
        "POP2 (Zeng et al.)", 2020, "Sunway TaihuLight", 10.0, 5.5,
        "1,189,500 cores", realistic=True, ocean=True,
    ),
    RelatedWorkPoint(
        "Veros", 2021, "NVIDIA A100", 10.0, 0.8,
        "16 A100 GPUs", realistic=True, ocean=True,
    ),
    RelatedWorkPoint(
        "swNEMO_v4.0", 2022, "New Sunway", 0.5, 0.42,
        "27,988,480 cores", realistic=True, ocean=True,
    ),
    RelatedWorkPoint(
        "Oceananigans (realistic)", 2023, "Perlmutter", 1.2, 0.3,
        "A100 GPUs", realistic=True, ocean=True,
    ),
    RelatedWorkPoint(
        "Oceananigans (idealized)", 2023, "Perlmutter", 0.488, 0.041,
        "768 A100 GPUs", realistic=False, ocean=True,
    ),
    RelatedWorkPoint(
        "HOMMEXX / E3SM dycore", 2020, "Summit", 3.0, 0.97,
        "full Summit", realistic=True, ocean=False,
    ),
    RelatedWorkPoint(
        "SCREAM / E3SM atmosphere", 2023, "Frontier", 3.25, 1.26,
        "full Frontier", realistic=True, ocean=False,
    ),
    RelatedWorkPoint(
        "LICOM3-Kokkos", 2024, "HIP GPUs", 5.0, 3.4,
        "4,096 HIP GPUs", realistic=True, ocean=True,
    ),
    RelatedWorkPoint(
        "LICOMK++ (this work)", 2024, "New Sunway", 1.0, 1.047,
        "38,366,250 cores", realistic=True, ocean=True, this_work=True,
    ),
    RelatedWorkPoint(
        "LICOMK++ (this work)", 2024, "ORISE", 1.0, 1.701,
        "16,000 HIP GPUs", realistic=True, ocean=True, this_work=True,
    ),
)


def kilometer_scale_realistic_leaders() -> Tuple[RelatedWorkPoint, ...]:
    """Realistic global *ocean* models at <= 1.2 km resolution."""
    return tuple(
        p for p in RELATED_WORK if p.ocean and p.realistic and p.resolution_km <= 1.2
    )
