"""Cross-platform scheduling (the paper's §VIII "computing power network").

The paper closes by arguing that performance portability enables
"flexible scheduling of applications across regions, architectures, and
operational entities": given several heterogeneous machines, pick the
platform and scale that meet a simulation's requirement at the least
cost.  This module implements that selection on top of the calibrated
machine model:

* :func:`throughput_options` — for each available machine, the smallest
  unit count that reaches a target SYPD (or its best achievable SYPD).
* :func:`choose_platform` — the cheapest option by a resource metric
  (core-hours or unit-hours per simulated year).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ocean.config import ModelConfig
from .machines import get_machine
from .scaling import predict_step_time, predict_sypd, sypd_from_step_time


@dataclass(frozen=True)
class PlatformOption:
    """One feasible (machine, units) assignment."""

    machine: str
    units: int
    cores: int
    sypd: float
    meets_target: bool
    #: Core-hours consumed per simulated year at this throughput.
    core_hours_per_sim_year: float

    @property
    def unit_hours_per_sim_year(self) -> float:
        return self.core_hours_per_sim_year * self.units / max(self.cores, 1)


@dataclass(frozen=True)
class JobQuote:
    """Admission-time price of one serving job.

    ``repro.serve`` quotes every submitted job with the calibrated
    machine model before enqueueing it: what the run will cost (in
    unit-seconds on the priced machine) and how long it should take.
    The quote is advisory pricing — the tiny configs the scheduler
    actually steps locally are priced on the same model as the paper's
    kilometer-scale targets, which is exactly the §VIII "computing
    power network" admission story.
    """

    machine: str
    units: int
    steps: int
    #: Modelled wall seconds per baroclinic step (slowest rank).
    seconds_per_step: float
    #: Modelled wall seconds for the whole job.
    eta_seconds: float
    #: units x eta: the resource-consumption metric budgets are set in.
    cost_unit_seconds: float
    #: Throughput at this (machine, units) assignment.
    sypd: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "machine": self.machine,
            "units": self.units,
            "steps": self.steps,
            "seconds_per_step": self.seconds_per_step,
            "eta_seconds": self.eta_seconds,
            "cost_unit_seconds": self.cost_unit_seconds,
            "sypd": self.sypd,
        }


def quote_job(
    cfg: ModelConfig,
    machine: str = "gpu_workstation",
    units: int = 1,
    steps: int = 1,
    precision: object = "double",
) -> JobQuote:
    """Price ``steps`` baroclinic steps of ``cfg`` on a machine.

    Raises
    ------
    UnknownMachineError
        When ``machine`` is not in the registry.
    ValueError
        When ``units`` or ``steps`` is not positive.
    """
    if units < 1:
        raise ValueError(f"units must be >= 1, got {units}")
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    get_machine(machine)  # fail early on unknown names
    t_step = predict_step_time(cfg, machine, units, precision=precision)
    eta = t_step * steps
    return JobQuote(
        machine=machine,
        units=int(units),
        steps=int(steps),
        seconds_per_step=t_step,
        eta_seconds=eta,
        cost_unit_seconds=eta * units,
        sypd=sypd_from_step_time(cfg, t_step),
    )


def _min_units_for_target(
    cfg: ModelConfig, machine: str, target_sypd: float, max_units: int
) -> Optional[int]:
    """Smallest unit count reaching ``target_sypd`` (bisection; None if
    even ``max_units`` falls short)."""
    if predict_sypd(cfg, machine, max_units) < target_sypd:
        return None
    lo, hi = 1, max_units
    while lo < hi:
        mid = (lo + hi) // 2
        if predict_sypd(cfg, machine, mid) >= target_sypd:
            hi = mid
        else:
            lo = mid + 1
    return lo


def throughput_options(
    cfg: ModelConfig,
    available: Dict[str, int],
    target_sypd: float,
) -> List[PlatformOption]:
    """Evaluate every available machine against the throughput target.

    ``available`` maps machine name -> maximum units the operator can
    allocate.  Machines that cannot reach the target contribute their
    best-effort option (``meets_target=False``).
    """
    options: List[PlatformOption] = []
    for name, max_units in available.items():
        spec = get_machine(name)
        units = _min_units_for_target(cfg, name, target_sypd, max_units)
        meets = units is not None
        if units is None:
            units = max_units
        sypd = predict_sypd(cfg, name, units)
        wall_hours_per_year = 24.0 / sypd
        options.append(PlatformOption(
            machine=name,
            units=units,
            cores=spec.cores(units),
            sypd=sypd,
            meets_target=meets,
            core_hours_per_sim_year=wall_hours_per_year * spec.cores(units),
        ))
    return options


def choose_platform(
    cfg: ModelConfig,
    available: Dict[str, int],
    target_sypd: float,
    metric: str = "unit_hours",
) -> PlatformOption:
    """Pick the cheapest platform meeting ``target_sypd``.

    ``metric`` is ``"unit_hours"`` (GPU/CG-hours per simulated year) or
    ``"core_hours"``.  Falls back to the highest-throughput option when
    no machine meets the target.

    Raises
    ------
    ValueError
        When ``available`` is empty or the metric is unknown.
    """
    if not available:
        raise ValueError("no machines available")
    if metric not in ("unit_hours", "core_hours"):
        raise ValueError(f"unknown metric {metric!r}")
    options = throughput_options(cfg, available, target_sypd)
    feasible = [o for o in options if o.meets_target]
    if not feasible:
        return max(options, key=lambda o: o.sypd)
    key = (lambda o: o.unit_hours_per_sim_year) if metric == "unit_hours" \
        else (lambda o: o.core_hours_per_sim_year)
    return min(feasible, key=key)


def format_schedule(cfg: ModelConfig, available: Dict[str, int],
                    target_sypd: float) -> str:
    """Render the §VIII platform-selection table."""
    options = throughput_options(cfg, available, target_sypd)
    choice = choose_platform(cfg, available, target_sypd)
    lines = [
        f"target: {target_sypd} SYPD on {cfg.name}",
        f"{'machine':<16s} {'units':>8s} {'cores':>11s} {'SYPD':>7s} "
        f"{'feasible':>9s} {'unit-h/SY':>11s}",
    ]
    for o in sorted(options, key=lambda o: o.unit_hours_per_sim_year):
        mark = " <== chosen" if o.machine == choice.machine else ""
        lines.append(
            f"{o.machine:<16s} {o.units:>8d} {o.cores:>11d} {o.sypd:>7.3f} "
            f"{str(o.meets_target):>9s} {o.unit_hours_per_sim_year:>11.0f}{mark}"
        )
    return "\n".join(lines)
