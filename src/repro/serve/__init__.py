"""``repro.serve`` — many concurrent model instances as a service.

The ROADMAP north-star past single runs: admit ensemble members and
parameter sweeps as jobs, price each on admission with the calibrated
machine model, share sealed launch graphs across identical-signature
jobs, stream per-job diagnostics and traces, and checkpoint long jobs
atomically so a kill resumes bit-exactly.  See DESIGN.md §2.16.
"""

from .jobs import Job, JobSpec, JobStatus, load_jobspecs, spec_from_dict
from .probes import ProbeStream, read_probes
from .scheduler import ServeScheduler
from .share import EngineCache, SharedEngine

__all__ = [
    "Job", "JobSpec", "JobStatus", "load_jobspecs", "spec_from_dict",
    "ProbeStream", "read_probes",
    "ServeScheduler",
    "EngineCache", "SharedEngine",
]
