"""Signature-keyed engine sharing: one sealed graph, many jobs.

Building a model is the expensive part of a tiny serving job — grid and
topography construction, view allocation, and (with ``graph=True``) the
first-step capture/seal/compile of the launch graphs.  MALI-style
campaigns run *many* configurations over one portable core, and within
a campaign most jobs share a configuration signature; re-paying
capture per job would waste exactly the cost graph replay exists to
amortise.

A :class:`SharedEngine` wraps one :class:`~repro.ocean.model.LICOMKpp`
and leases it to one job at a time.  The lease protocol is what makes
sharing *bitwise safe*:

* every lease starts with :meth:`LICOMKpp.reset` — all views zeroed,
  analytic initial conditions re-applied — so each job sees a state
  bitwise identical to a freshly constructed model;
* view **objects** survive reset, so the sealed ``LaunchGraph``\\ s
  (whose binding signatures are made of view identities) stay valid:
  job 2 replays the plans job 1 captured;
* the engine lock serialises leases — two same-signature jobs run one
  after the other on the engine while different-signature jobs run
  concurrently on their own engines.

The :class:`EngineCache` keys engines by
:meth:`~repro.serve.jobs.JobSpec.share_signature` and counts hits and
misses; engines are built *under the cache lock* so two simultaneous
submits of the same signature deterministically produce one build and
one hit.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple

from ..ocean.model import LICOMKpp
from .jobs import JobSpec


class SharedEngine:
    """One cached model instance, leased to one job at a time."""

    def __init__(self, signature: Tuple, spec: JobSpec) -> None:
        self.signature = signature
        self.model = LICOMKpp(spec.config(), backend=spec.backend,
                              params=spec.params(), seed=spec.seed)
        self.leases = 0
        self._lock = threading.Lock()

    @contextmanager
    def lease(self, job_name: str) -> Iterator[LICOMKpp]:
        """Exclusive, pristine use of the engine for one job.

        Resets the model to its bitwise post-construction state and
        relabels/clears the tracer timeline so the exported trace
        belongs to this job alone.
        """
        with self._lock:
            self.leases += 1
            self.model.reset()
            tracer = self.model.context.tracer
            tracer.relabel(job_name)
            tracer.clear()
            yield self.model

    def graph_stats(self) -> List[Dict[str, object]]:
        """Stats of every sealed step-graph variant this engine holds."""
        return [g.stats() for g in self.model._graphs.values() if g.sealed]

    def close(self) -> None:
        self.model.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedEngine(leases={self.leases}, sig={self.signature})"


class EngineCache:
    """Signature-keyed cache of shared engines with hit/miss counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._engines: Dict[Tuple, SharedEngine] = {}
        self.hits = 0
        self.misses = 0

    def acquire(self, spec: JobSpec) -> SharedEngine:
        """The engine for ``spec``'s signature, building on first use.

        The build happens under the cache lock: a second submit of the
        same signature blocks until the engine exists and is counted as
        a hit, never as a duplicate build.
        """
        sig = spec.share_signature()
        with self._lock:
            engine = self._engines.get(sig)
            if engine is not None:
                self.hits += 1
                return engine
            self.misses += 1
            engine = SharedEngine(sig, spec)
            self._engines[sig] = engine
            return engine

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "engines": len(self._engines),
                "hits": self.hits,
                "misses": self.misses,
                "leases": {str(sig): eng.leases
                           for sig, eng in self._engines.items()},
            }

    def close_all(self) -> None:
        """Close every cached engine (serve shutdown)."""
        with self._lock:
            engines = list(self._engines.values())
            self._engines.clear()
        for engine in engines:
            engine.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._engines)
