"""The serving scheduler: admission pricing, worker pool, durability.

``ServeScheduler`` is the composition point of everything the previous
PRs built — the §VIII "many concurrent model instances as a production
system" story:

* **Admission** — every submitted :class:`~repro.serve.jobs.JobSpec`
  is priced with :func:`repro.perfmodel.quote_job` (modelled ETA and
  unit-seconds cost on the spec's machine) *before* it is queued.  A
  configurable budget turns the quote into a gate: an over-budget job
  is refused with :class:`~repro.errors.AdmissionError` carrying the
  numbers, and recorded as REJECTED for status listings.
* **Sharing** — shareable jobs (single-rank, thread substrate) lease
  engines from a signature-keyed :class:`~repro.serve.share.EngineCache`
  so same-configuration jobs replay one sealed launch graph
  (hit/miss counters prove it).
* **Execution** — a bounded pool of worker threads drains the queue.
  Multi-rank and isolated jobs run through
  :func:`repro.ocean.model.run_distributed` (``mode="process"`` spawns
  one OS process per rank via SimWorld); generic ``program`` jobs run
  on their own SimWorld.  Per-job ``timeout`` deadlines are threaded
  into the world, so a wedged job dies with
  :class:`~repro.errors.CommunicationError` as a FAILED status while
  the pool keeps serving.
* **Durability** — long jobs checkpoint every ``checkpoint_every``
  steps through the atomic :func:`repro.ocean.restart.save_restart`;
  a killed job resubmitted with ``resume=True`` continues from its
  latest checkpoint bit-exactly.
* **Artifacts** — each job owns ``<root>/<name>/``: streamed
  ``probes.jsonl`` rows, a Chrome ``trace.json`` (when tracing), the
  rolling ``checkpoint.npz`` and the final state snapshot.

Shutdown closes every cached engine, joins the workers, and sweeps any
stray ``/dev/shm`` world segments a killed process-mode driver may
have orphaned.
"""

from __future__ import annotations

import pathlib
import queue
import threading
import time
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..errors import AdmissionError, JobTimeout, ReproError
from ..ocean.model import LICOMKpp, STATE_FIELDS, run_distributed
from ..ocean.restart import load_restart, save_restart
from ..parallel.comm import DEFAULT_TIMEOUT, SimWorld
from ..parallel.procworld import sweep_stray_worlds
from ..perfmodel import quote_job
from ..trace import write_chrome_trace
from .jobs import Job, JobSpec, JobStatus
from .probes import ProbeStream
from .share import EngineCache

_SENTINEL = None


class ServeScheduler:
    """Bounded-pool job scheduler for concurrent model instances.

    Parameters
    ----------
    workers:
        Worker threads draining the queue (>= 1).
    budget:
        Admission budget in unit-seconds of modelled cost
        (``JobQuote.cost_unit_seconds``); ``None`` admits everything.
    artifacts:
        Root directory; each job streams into ``<artifacts>/<name>/``.
    share:
        Lease signature-shared engines to shareable jobs (default).
    """

    def __init__(
        self,
        workers: int = 2,
        budget: Optional[float] = None,
        artifacts: Union[str, pathlib.Path] = "serve_artifacts",
        share: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.budget = budget
        self.artifacts = pathlib.Path(artifacts)
        self.share = share
        self.cache = EngineCache()
        self.jobs: Dict[int, Job] = {}
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"serve{i}",
                             daemon=True)
            for i in range(workers)
        ]
        for t in self._workers:
            t.start()

    # -- submission --------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Validate, price, and enqueue one job.

        Returns the :class:`Job` record (its ``quote`` is set for every
        accepted job).  Raises :class:`AdmissionError` on a malformed
        spec or a quote over budget; the refused job is recorded with
        REJECTED status so operators can see what was turned away.
        """
        if self._closed:
            raise AdmissionError("scheduler is shut down")
        spec.validate()
        with self._lock:
            job_id = self._next_id
            self._next_id += 1
        job = Job(job_id, spec, self.artifacts / spec.name)
        with self._lock:
            self.jobs[job_id] = job
        if spec.program is None:
            job.quote = quote_job(
                spec.config(), machine=spec.machine, units=spec.ranks,
                steps=spec.steps, precision=spec.precision)
            if self.budget is not None \
                    and job.quote.cost_unit_seconds > self.budget:
                job.error = (
                    f"over budget: modelled cost "
                    f"{job.quote.cost_unit_seconds:.3g} unit-seconds "
                    f"({spec.steps} steps on {spec.machine} x {spec.ranks}) "
                    f"exceeds the configured budget {self.budget:.3g}")
                job.finish(JobStatus.REJECTED)
                raise AdmissionError(f"job {spec.name!r} {job.error}")
        self._queue.put(job)
        return job

    def submit_many(self, specs: List[JobSpec]) -> List[Job]:
        """Submit a batch; rejected jobs are recorded, not raised."""
        out: List[Job] = []
        for spec in specs:
            try:
                out.append(self.submit(spec))
            except AdmissionError:
                rejected = [j for j in self.jobs.values()
                            if j.spec is spec
                            and j.status is JobStatus.REJECTED]
                out.extend(rejected[-1:])
        return out

    # -- queries -----------------------------------------------------------

    def job(self, job_id: int) -> Job:
        with self._lock:
            return self.jobs[job_id]

    def status(self) -> Dict[str, Any]:
        """Scheduler vitals plus one summary row per job."""
        with self._lock:
            jobs = list(self.jobs.values())
        counts: Dict[str, int] = {}
        for j in jobs:
            counts[j.status.value] = counts.get(j.status.value, 0) + 1
        return {
            "workers": len(self._workers),
            "budget": self.budget,
            "counts": counts,
            "cache": self.cache.stats(),
            "jobs": [j.summary() for j in jobs],
        }

    def wait_all(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job is terminal."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            jobs = list(self.jobs.values())
        for j in jobs:
            left = None if deadline is None else deadline - time.monotonic()
            if left is not None and left <= 0:
                return False
            if not j.wait(left):
                return False
        return True

    # -- worker pool ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _SENTINEL:
                return
            job.status = JobStatus.RUNNING
            try:
                job.result = self._run_job(job)
            except Exception as exc:
                job.error = f"{type(exc).__name__}: {exc}"
                job.finish(JobStatus.FAILED)
            else:
                job.finish(JobStatus.DONE)

    def _run_job(self, job: Job) -> Dict[str, Any]:
        spec = job.spec
        job.artifacts.mkdir(parents=True, exist_ok=True)
        if spec.program is not None:
            return self._run_program_job(job)
        if spec.ranks > 1 or spec.mode == "process":
            return self._run_world_job(job)
        return self._run_engine_job(job)

    def _run_program_job(self, job: Job) -> Dict[str, Any]:
        """A generic SimWorld program on its own world.

        The per-job deadline *is* the world timeout: a wedged program
        dies with CommunicationError (thread mode) or RemoteRankError
        (process mode) and the worker records a FAILED status.
        """
        spec = job.spec
        timeout = DEFAULT_TIMEOUT if spec.timeout is None else spec.timeout
        world = SimWorld(spec.ranks, timeout=timeout, mode=spec.mode)
        results = world.launch(spec.program, args=spec.args)
        return {"ranks": spec.ranks, "results": results}

    def _run_world_job(self, job: Job) -> Dict[str, Any]:
        """A multi-rank (or process-isolated) model run."""
        spec = job.spec
        results, world = run_distributed(
            spec.config(), spec.ranks, spec.steps, backend=spec.backend,
            params=spec.params(), mode=spec.mode, timeout=spec.timeout)
        state = {f: results[0].state[f] for f in STATE_FIELDS}
        return {
            "nstep": results[0].nstep,
            "state": state,
            "ranks": spec.ranks,
            "mode": spec.mode,
            "messages": world.traffic.messages,
        }

    def _run_engine_job(self, job: Job) -> Dict[str, Any]:
        """A single-rank model job, on a shared engine when possible."""
        spec = job.spec
        if self.share and spec.shareable:
            engine = self.cache.acquire(spec)
            job.shared_engine = True
            with engine.lease(spec.name) as model:
                return self._step_model(job, model,
                                        graph_stats=engine.graph_stats)
        model = LICOMKpp(spec.config(), backend=spec.backend,
                         params=spec.params(), seed=spec.seed)
        try:
            return self._step_model(job, model)
        finally:
            model.close()

    def _step_model(self, job: Job, model: LICOMKpp,
                    graph_stats=None) -> Dict[str, Any]:
        """The per-step serving loop: probes, checkpoints, deadline."""
        spec = job.spec
        ckpt = job.artifacts / "checkpoint.npz"
        resumed_from = None
        if spec.resume and ckpt.exists():
            load_restart(model, ckpt)
            resumed_from = model.nstep
        deadline = None if spec.timeout is None \
            else time.monotonic() + spec.timeout
        probes = None
        if spec.probe_every:
            probes = ProbeStream(job.artifacts / "probes.jsonl",
                                 append=resumed_from is not None)
        try:
            while model.nstep < spec.steps:
                if deadline is not None and time.monotonic() > deadline:
                    raise JobTimeout(
                        f"job {spec.name!r} exceeded its {spec.timeout}s "
                        f"deadline at step {model.nstep}/{spec.steps}")
                model.step()
                if probes is not None and model.nstep % spec.probe_every == 0:
                    probes.sample(model)
                if spec.checkpoint_every and (
                        model.nstep % spec.checkpoint_every == 0
                        or model.nstep == spec.steps):
                    save_restart(model, ckpt)
        finally:
            if probes is not None:
                probes.close()
        state = {f: getattr(model.state, f).cur.raw.copy()
                 for f in STATE_FIELDS}
        if spec.save_final:
            np.savez_compressed(job.artifacts / "final.npz", **state)
        if spec.trace:
            write_chrome_trace(job.artifacts / "trace.json",
                               model.context.tracer)
        result: Dict[str, Any] = {
            "nstep": model.nstep,
            "state": state,
            "resumed_from": resumed_from,
            "probe_rows": probes.rows_written if probes is not None else 0,
        }
        if graph_stats is not None:
            result["graphs"] = graph_stats()
        return result

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Stop the pool, close engines, sweep stray world segments.

        Idempotent.  Returns a small report (cache stats, swept
        segment names) so callers/tests can assert cleanliness.
        """
        if self._closed:
            return {"cache": self.cache.stats(), "swept": []}
        self._closed = True
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for t in self._workers:
            t.join(timeout)
        self.cache.close_all()
        swept = sweep_stray_worlds()
        return {"cache": self.cache.stats(), "swept": swept}

    def __enter__(self) -> "ServeScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


# re-exported for callers that want to map failures to statuses
__all__ = ["ServeScheduler", "JobTimeout", "AdmissionError", "ReproError"]
