"""Streaming probe rows: append-and-flush JSONL diagnostics per job.

nengo-mpi streams probe samples to per-probe save files as the
simulation advances rather than holding them in memory; this module is
that pattern for serving jobs.  Each sampled step appends **one line of
JSON** to the job's ``probes.jsonl`` and flushes, so a killed job's
diagnostics are readable up to its last completed sample — the probe
stream is the job's flight recorder, not a post-hoc report.

Rows carry the standard scalar diagnostics (SST extrema, kinetic
energy, SSH RMS) plus the step/clock counters; :func:`read_probes`
loads them back for assertions and plotting.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Union

import numpy as np


class ProbeStream:
    """Append-with-flush JSONL sink for one job's scalar diagnostics."""

    def __init__(self, path: Union[str, pathlib.Path],
                 append: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a" if append else "w")
        self.rows_written = 0

    def sample(self, model) -> Dict[str, Any]:
        """Append one row for the model's current state and flush it."""
        sst = model.sst()
        ssh = model.local_interior(model.state.ssh.cur.raw)
        row = {
            "step": int(model.nstep),
            "time_days": float(model.time_seconds / 86400.0),
            "sst_min": float(np.nanmin(sst)),
            "sst_max": float(np.nanmax(sst)),
            "ke": float(model.kinetic_energy()),
            "ssh_rms": float(np.sqrt(np.mean(ssh * ssh))),
        }
        self.write_row(row)
        return row

    def write_row(self, row: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(row) + "\n")
        self._fh.flush()
        self.rows_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "ProbeStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_probes(path: Union[str, pathlib.Path]) -> List[Dict[str, Any]]:
    """Load a ``probes.jsonl`` back into a list of row dicts.

    A trailing partial line (a write the process died inside) is
    skipped, matching the stream's crash-readable contract.
    """
    rows: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError:
                break
    return rows
