"""Job specifications and lifecycle records for the serving layer.

A :class:`JobSpec` is the *what* of one serving job — an ensemble
member, a parameter-sweep point, or a multi-backend run — expressed in
plain data so specs can travel as JSON (``load_jobspecs``) or be built
inline.  A :class:`Job` is the *lifecycle* record the scheduler hands
back on submit: status, the perfmodel admission quote, the result
payload, the error text of a failed run, and the artifact directory
the job streamed probes / traces / checkpoints into.

Sharing is keyed on :meth:`JobSpec.share_signature`: two specs with the
same signature produce bitwise-identical engines (same config, backend,
precision, graph/jit tier, tracer count and seed), so the scheduler can
lease one :class:`~repro.serve.share.SharedEngine` to both.
"""

from __future__ import annotations

import json
import pathlib
import threading
from dataclasses import dataclass, fields
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..errors import AdmissionError
from ..ocean.config import ModelConfig, demo
from ..ocean.model import ModelParams


@dataclass
class JobSpec:
    """One serving job, as plain data.

    Parameters mirror the CLI run knobs; everything has a default so a
    jobspec JSON only names what it changes.  ``program`` admits a
    generic SimWorld program (a picklable module-level callable taking
    ``(comm, *args)``) instead of a model run — the escape hatch the
    tests use for deterministic wedge/failure jobs.
    """

    name: str
    #: Demo-config size ("tiny"/"small"/"medium"/"large").
    size: str = "tiny"
    backend: str = "serial"
    steps: int = 4
    ranks: int = 1
    #: Execution substrate for multi-rank / isolated jobs.
    mode: str = "thread"
    precision: str = "double"
    graph: bool = True
    jit: Optional[bool] = None
    n_passive: int = 0
    seed: int = 2024
    #: Probe-row cadence in steps (0 disables streaming diagnostics).
    probe_every: int = 1
    #: Checkpoint cadence in steps (0 disables; the checkpoint file is
    #: a single atomically-replaced ``checkpoint.npz`` per job).
    checkpoint_every: int = 0
    #: Start from the job's latest checkpoint when one exists.
    resume: bool = False
    #: Per-job wall-clock deadline in seconds (None = no deadline).
    timeout: Optional[float] = None
    trace: bool = False
    #: Machine the admission quote is priced on (perfmodel registry).
    machine: str = "gpu_workstation"
    save_final: bool = True
    #: Generic SimWorld program job (tests, custom collectives).
    program: Optional[Callable] = None
    args: Tuple = ()

    def validate(self) -> None:
        """Reject malformed specs before they reach the queue."""
        if not self.name or "/" in self.name:
            raise AdmissionError(
                f"job name {self.name!r} must be a non-empty path-safe token")
        if self.steps < 1 and self.program is None:
            raise AdmissionError(f"job {self.name!r}: steps must be >= 1")
        if self.ranks < 1:
            raise AdmissionError(f"job {self.name!r}: ranks must be >= 1")
        if self.mode not in ("thread", "process"):
            raise AdmissionError(
                f"job {self.name!r}: unknown mode {self.mode!r}")
        if self.timeout is not None and self.timeout <= 0:
            raise AdmissionError(
                f"job {self.name!r}: timeout must be positive, "
                f"got {self.timeout}")
        if self.probe_every < 0 or self.checkpoint_every < 0:
            raise AdmissionError(
                f"job {self.name!r}: cadences must be >= 0")

    def config(self) -> ModelConfig:
        return demo(self.size)

    def params(self) -> ModelParams:
        return ModelParams(
            precision=self.precision,
            graph=self.graph,
            jit=self.jit,
            n_passive=self.n_passive,
            trace=self.trace,
        )

    @property
    def shareable(self) -> bool:
        """Can this job run on a cached, signature-shared engine?

        Sharing leases one in-process model; multi-rank jobs, isolated
        (process-mode) jobs and generic program jobs each own their
        world instead.
        """
        return (self.ranks == 1 and self.mode == "thread"
                and self.program is None)

    def share_signature(self) -> Tuple:
        """Everything that shapes the engine (and its sealed graphs).

        Two specs with equal signatures step bitwise identically on the
        same engine; steps / cadences / timeouts are per-job and
        deliberately excluded.
        """
        return (self.size, self.backend, self.precision, self.graph,
                self.jit, self.n_passive, self.seed, self.trace)


class JobStatus(Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    REJECTED = "rejected"


class Job:
    """One submitted job's lifecycle record (scheduler-owned)."""

    def __init__(self, job_id: int, spec: JobSpec,
                 artifacts: pathlib.Path) -> None:
        self.id = job_id
        self.spec = spec
        self.status = JobStatus.PENDING
        #: Admission-time :class:`~repro.perfmodel.JobQuote`.
        self.quote = None
        #: Result payload of a DONE job (state arrays, graph stats, ...).
        self.result: Optional[Dict[str, Any]] = None
        #: Error text ("ExcType: message") of a FAILED/REJECTED job.
        self.error: Optional[str] = None
        #: Per-job artifact directory (probes, trace, checkpoints).
        self.artifacts = artifacts
        #: True when this job leased a cached engine (cache hit or miss).
        self.shared_engine = False
        self._done = threading.Event()

    def finish(self, status: JobStatus) -> None:
        self.status = status
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal status."""
        return self._done.wait(timeout)

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def summary(self) -> Dict[str, Any]:
        """Status row: JSON-serialisable, no field arrays."""
        out: Dict[str, Any] = {
            "id": self.id,
            "name": self.spec.name,
            "status": self.status.value,
            "artifacts": str(self.artifacts),
        }
        if self.quote is not None:
            out["quote"] = self.quote.as_dict()
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["nstep"] = self.result.get("nstep")
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Job(id={self.id}, name={self.spec.name!r}, "
                f"status={self.status.value})")


_SPEC_FIELDS = {f.name for f in fields(JobSpec)}


def spec_from_dict(data: Dict[str, Any]) -> JobSpec:
    """Build a JobSpec from a plain dict, rejecting unknown keys."""
    unknown = sorted(set(data) - _SPEC_FIELDS)
    if unknown:
        raise AdmissionError(
            f"jobspec {data.get('name', '?')!r}: unknown keys {unknown}; "
            f"valid keys are {sorted(_SPEC_FIELDS)}")
    if "name" not in data:
        raise AdmissionError("jobspec without a name")
    if "args" in data:
        data = dict(data, args=tuple(data["args"]))
    spec = JobSpec(**data)
    spec.validate()
    return spec


def load_jobspecs(path: Union[str, pathlib.Path]) -> List[JobSpec]:
    """Load a jobspec file: a JSON list of dicts or ``{"jobs": [...]}``."""
    with open(path) as fh:
        data = json.load(fh)
    if isinstance(data, dict):
        data = data.get("jobs", [])
    if not isinstance(data, list):
        raise AdmissionError(
            f"jobspec file {path}: expected a list or a 'jobs' list")
    return [spec_from_dict(dict(item)) for item in data]
