"""Predicted timelines: a step's spans priced by the machine model.

The measured trace shows what the Python host actually did; the paper's
performance story is about what the same launch sequence costs on
SW26010-Pro or ORISE.  This module re-lays a recorded step using
:mod:`repro.perfmodel` durations instead of host wall time:

* ``kernel`` spans (which carry their ``points``/``flops``/``bytes``
  payload) are priced with the roofline —
  ``max(bytes / effective_bw, flops / peak) + launch_overhead``;
* ``halo`` spans use the alpha-beta model: pack/unpack at the
  machine's calibrated pack bandwidth, waits at
  ``net_latency + bytes / net_bw``;
* container spans (timers, graph replay) become the sum of their
  children, laid back-to-back — the sequential-dispatch assumption the
  perfmodel's kernel-time aggregation already makes.

The output is the same Chrome trace-event JSON as the measured
exporter (category ``predicted``), so measured and predicted timelines
open side by side in Perfetto.  Each predicted span keeps its measured
host duration in ``args["wall_us"]`` for comparison.
"""

from __future__ import annotations

from typing import Any, Dict, List, Union

from .tracer import Span, Tracer

_US = 1.0e6


class _Node:
    __slots__ = ("span", "children")

    def __init__(self, span: Span) -> None:
        self.span = span
        self.children: List["_Node"] = []


def _lane_trees(spans: List[Span]) -> Dict[int, List[_Node]]:
    """Rebuild each lane's span forest from begin order + depth."""
    forests: Dict[int, List[_Node]] = {}
    stacks: Dict[int, List[_Node]] = {}
    for sp in spans:
        if sp.dur is None:
            continue
        node = _Node(sp)
        stack = stacks.setdefault(sp.tid, [])
        while stack and stack[-1].span.depth >= sp.depth:
            stack.pop()
        if stack:
            stack[-1].children.append(node)
        else:
            forests.setdefault(sp.tid, []).append(node)
        stack.append(node)
    return forests


def _leaf_duration(sp: Span, m) -> float:
    """Machine-model seconds for one leaf span."""
    args = sp.args
    nbytes = float(args.get("bytes", 0.0))
    if sp.cat == "kernel":
        flops = float(args.get("flops", 0.0))
        dtype = args.get("dtype")
        if dtype:
            # declared bytes_per_point count 8-byte words; a narrow
            # sweep moves itemsize/8 of that, a cast boundary (f4+f8)
            # the mean of its two sides
            widths = [{"f4": 4.0}.get(tag, 8.0) for tag in dtype.split("+")]
            nbytes *= (sum(widths) / len(widths)) / 8.0
        streaming = nbytes / m.effective_bw_unit if nbytes else 0.0
        compute = flops / m.peak_flops_unit if flops else 0.0
        overhead = m.launch_overhead
        if args.get("jit"):
            # compiled-tier launches (args["jit"] tier label) pay only
            # the dispatch fraction — same discount as the perfmodel's
            # launches_compiled term
            from ..perfmodel.kernelcost import JIT_DISPATCH_FRACTION

            overhead *= JIT_DISPATCH_FRACTION
        return max(streaming, compute) + overhead
    if sp.cat == "halo":
        if sp.name in ("halo_pack", "halo_unpack"):
            return nbytes / m.effective_pack_bw
        if sp.name == "halo_wait":
            return m.net_latency + nbytes / m.net_bw
        return 0.0  # halo_post: posting receives is free in the model
    return 0.0      # host glue the machine model does not price


def _place(node: _Node, start: float, m, pid: int,
           events: List[Dict[str, Any]]) -> float:
    """Lay ``node`` at ``start``; return its predicted duration."""
    if node.children:
        cursor = start
        for child in node.children:
            cursor += _place(child, cursor, m, pid, events)
        dur = cursor - start
    else:
        dur = _leaf_duration(node.span, m)
    sp = node.span
    args = dict(sp.args)
    args["wall_us"] = sp.dur * _US
    events.append({
        "name": sp.name, "cat": "predicted", "ph": "X",
        "ts": start * _US, "dur": dur * _US,
        "pid": pid, "tid": sp.tid, "args": args,
    })
    return dur


def predicted_timeline(tracers: Union[Tracer, List[Tracer]],
                       machine: Union[str, object],
                       ) -> Dict[str, Any]:
    """Chrome trace of the recorded spans re-priced for ``machine``.

    ``machine`` is a registry name (``"orise"``, ``"new_sunway"``, ...)
    or a :class:`~repro.perfmodel.machines.MachineSpec`.  Instant
    events are dropped — the model prices intervals, not markers.
    """
    from ..perfmodel.machines import get_machine

    m = get_machine(machine) if isinstance(machine, str) else machine
    if isinstance(tracers, Tracer):
        tracers = [tracers]
    events: List[Dict[str, Any]] = []
    for tr in tracers:
        pid = tr.rank
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"{tr.name} [predicted: {m.name}]"},
        })
        for tid, roots in sorted(_lane_trees(tr.spans).items()):
            cursor = 0.0
            for root in roots:
                cursor += _place(root, cursor, m, pid, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_predicted_timeline(path, tracers: Union[Tracer, List[Tracer]],
                             machine: Union[str, object]):
    """Export a predicted timeline to ``path`` (returns the Path)."""
    import json
    from pathlib import Path

    out = Path(path)
    out.write_text(json.dumps(predicted_timeline(tracers, machine),
                              indent=1, default=float) + "\n")
    return out
