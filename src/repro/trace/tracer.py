"""Span tracer: nestable, thread- and rank-labelled timeline events.

The paper explains its wins with per-kernel/per-phase breakdowns of the
daily loop (§VI-C); the aggregate counters of
:mod:`repro.kokkos.instrument` reproduce the *totals* but not the
*shape* of a step — launch, DMA, halo pack/post/wait/unpack, graph
replay — the way APEX traces do for HPX/Kokkos codes.  A
:class:`Tracer` records that shape: begin/end **spans** (nestable,
balanced per thread) and **instant events**, each carrying wall-clock
time relative to the tracer's epoch plus arbitrary counter payloads
(points, flops, bytes, message sizes).

One tracer belongs to one rank (one
:class:`~repro.kokkos.context.ExecutionContext`); events are labelled
with a dense per-thread lane index so a multi-threaded rank renders as
stacked lanes.  :mod:`repro.trace.export` turns one tracer per rank
into Chrome trace-event JSON (``pid`` = rank, ``tid`` = lane).

Disabled tracers are free: every hook in the library guards with
``if tracer is not None and tracer.enabled`` before building any event,
so ``trace=False`` stepping pays one attribute load per hook.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..errors import TraceError


class Span:
    """One closed or in-flight interval on a thread lane.

    ``ts`` and ``dur`` are seconds relative to the owning tracer's
    epoch; ``dur`` is ``None`` while the span is open.  ``depth`` is the
    nesting depth at begin time — spans are appended to the tracer in
    begin order, so (lane order, depth) reconstructs the tree without
    timestamps, which is what the predicted-timeline mode relies on.
    """

    __slots__ = ("name", "cat", "ts", "dur", "tid", "depth", "args")

    def __init__(self, name: str, cat: str, ts: float, tid: int,
                 depth: int, args: Dict[str, Any]) -> None:
        self.name = name
        self.cat = cat
        self.ts = ts
        self.dur: Optional[float] = None
        self.tid = tid
        self.depth = depth
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.dur is None else f"dur={self.dur:.6f}"
        return (f"Span({self.name!r}, cat={self.cat!r}, tid={self.tid}, "
                f"depth={self.depth}, {state})")


class Instant:
    """A zero-duration event (H2D/D2H copy, DMA descriptor, send)."""

    __slots__ = ("name", "cat", "ts", "tid", "args")

    def __init__(self, name: str, cat: str, ts: float, tid: int,
                 args: Dict[str, Any]) -> None:
        self.name = name
        self.cat = cat
        self.ts = ts
        self.tid = tid
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Instant({self.name!r}, cat={self.cat!r}, tid={self.tid})"


class Tracer:
    """Per-rank event recorder with balanced, per-thread span stacks.

    Parameters
    ----------
    rank:
        The owning rank; becomes the Chrome-trace ``pid``.
    name:
        Process label shown in the viewer (defaults to ``rank<N>``).
    enabled:
        Start recording immediately.  A disabled tracer records nothing
        and its :meth:`span` context manager is a shared no-op.
    clock:
        Monotonic clock (injectable for tests).
    """

    def __init__(self, rank: int = 0, name: Optional[str] = None,
                 enabled: bool = False,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.rank = int(rank)
        self.name = name if name is not None else f"rank{self.rank}"
        self.enabled = bool(enabled)
        self._clock = clock
        self.epoch = clock()
        #: All spans in begin order (open spans have ``dur is None``).
        self.spans: List[Span] = []
        #: All instant events in emission order.
        self.instants: List[Instant] = []
        self._lock = threading.Lock()
        self._stacks: Dict[int, List[Span]] = {}   # thread ident -> open spans
        self._lanes: Dict[int, int] = {}           # thread ident -> dense tid
        self._lane_names: Dict[int, str] = {}      # dense tid -> thread name

    # Tracers ride home in process-mode worker exit reports.  The lock
    # and the thread-ident keyed maps are process-local (idents mean
    # nothing in the parent); lane names and all events travel.
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        state.pop("_stacks", None)
        state.pop("_lanes", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._stacks = {}
        self._lanes = {}

    # -- recording ---------------------------------------------------------

    def _lane(self, ident: int) -> int:
        tid = self._lanes.get(ident)
        if tid is None:
            tid = self._lanes[ident] = len(self._lanes)
            self._lane_names[tid] = threading.current_thread().name
        return tid

    def begin(self, name: str, cat: str = "", **args: Any) -> Optional[Span]:
        """Open a span on the calling thread's lane."""
        if not self.enabled:
            return None
        now = self._clock() - self.epoch
        ident = threading.get_ident()
        with self._lock:
            tid = self._lane(ident)
            stack = self._stacks.setdefault(ident, [])
            sp = Span(name, cat, now, tid, len(stack), args)
            self.spans.append(sp)
            stack.append(sp)
        return sp

    def end(self, name: Optional[str] = None, **args: Any) -> Optional[Span]:
        """Close the innermost open span (checking ``name`` when given)."""
        if not self.enabled:
            return None
        now = self._clock() - self.epoch
        ident = threading.get_ident()
        with self._lock:
            stack = self._stacks.get(ident)
            if not stack:
                raise TraceError(
                    f"span end({name!r}) with no open span on this thread")
            sp = stack[-1]
            if name is not None and sp.name != name:
                raise TraceError(
                    f"span end({name!r}) does not match innermost open span "
                    f"({sp.name!r})")
            stack.pop()
            sp.dur = now - sp.ts
            if args:
                sp.args.update(args)
        return sp

    @contextmanager
    def span(self, name: str, cat: str = "", **args: Any) -> Iterator[Optional[Span]]:
        """Context manager: record the enclosed block as one span."""
        if not self.enabled:
            yield None
            return
        sp = self.begin(name, cat, **args)
        try:
            yield sp
        finally:
            # close *this* span even if enabled flipped or inner spans
            # leaked: pop until sp so the stack stays consistent
            ident = threading.get_ident()
            now = self._clock() - self.epoch
            with self._lock:
                stack = self._stacks.get(ident, [])
                while stack:
                    top = stack.pop()
                    top.dur = now - top.ts
                    if top is sp:
                        break

    def instant(self, name: str, cat: str = "", **args: Any) -> Optional[Instant]:
        """Record a zero-duration event on the calling thread's lane."""
        if not self.enabled:
            return None
        now = self._clock() - self.epoch
        ident = threading.get_ident()
        with self._lock:
            ev = Instant(name, cat, now, self._lane(ident), args)
            self.instants.append(ev)
        return ev

    # -- control / introspection -------------------------------------------

    def enable(self) -> "Tracer":
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def clear(self) -> None:
        """Drop all recorded events (lane assignments are kept)."""
        with self._lock:
            self.spans.clear()
            self.instants.clear()
            self._stacks.clear()

    def relabel(self, name: str, reset_epoch: bool = True) -> "Tracer":
        """Rename the timeline (and restart its clock) for a new owner.

        The serving layer leases one engine — one context, one tracer —
        to many jobs in turn; each lease relabels the tracer with the
        job's name so the exported timeline says whose steps these are,
        and resets the epoch so per-job traces all start near t=0.
        """
        self.name = name
        if reset_epoch:
            self.epoch = self._clock()
        return self

    def closed_spans(self) -> List[Span]:
        """All completed spans, in begin order."""
        return [s for s in self.spans if s.dur is not None]

    def lane_names(self) -> Dict[int, str]:
        """Dense lane index -> thread name (for viewer metadata)."""
        return dict(self._lane_names)

    def open_depth(self) -> int:
        """Open spans on the calling thread (0 = balanced)."""
        stack = self._stacks.get(threading.get_ident())
        return len(stack) if stack else 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Tracer(rank={self.rank}, name={self.name!r}, "
                f"enabled={self.enabled}, spans={len(self.spans)}, "
                f"instants={len(self.instants)})")
