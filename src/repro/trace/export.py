"""Chrome trace-event JSON export and schema validation.

The exporter emits the Trace Event Format consumed by Perfetto and
``chrome://tracing``: a JSON object ``{"traceEvents": [...]}`` whose
events carry ``name``, ``cat``, a phase ``ph`` (``"X"`` complete span,
``"i"`` instant, ``"M"`` metadata), microsecond ``ts``/``dur``, and the
``pid``/``tid`` pair that selects the timeline lane.  One
:class:`~repro.trace.tracer.Tracer` maps to one process lane group:
``pid`` is the rank, ``tid`` the dense per-thread lane, and metadata
events name both, so a 2-rank SimWorld run renders as two labelled
process tracks.

:func:`validate_chrome_trace` is the schema check CI runs on the
exported file — it returns a list of human-readable problems (empty
means valid) instead of raising, so callers can report all at once.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from .tracer import Tracer

_US = 1.0e6  # tracer records seconds; the trace format wants microseconds

#: Phases the exporter emits / the validator accepts.
VALID_PHASES = frozenset({"X", "B", "E", "i", "I", "C", "M"})


def chrome_events(tracer: Tracer, pid: Optional[int] = None) -> List[Dict[str, Any]]:
    """One tracer's events as Chrome trace-event dicts.

    ``pid`` defaults to the tracer's rank.  Open spans (crashed or
    still-running regions) are skipped — the format has no well-formed
    representation for them and partial traces should still load.
    """
    pid = tracer.rank if pid is None else int(pid)
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": tracer.name},
    }]
    for tid, lane_name in sorted(tracer.lane_names().items()):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": lane_name},
        })
    for sp in tracer.spans:
        if sp.dur is None:
            continue
        events.append({
            "name": sp.name, "cat": sp.cat or "span", "ph": "X",
            "ts": sp.ts * _US, "dur": sp.dur * _US,
            "pid": pid, "tid": sp.tid, "args": dict(sp.args),
        })
    for ev in tracer.instants:
        events.append({
            "name": ev.name, "cat": ev.cat or "instant", "ph": "i",
            "ts": ev.ts * _US, "pid": pid, "tid": ev.tid,
            "s": "t", "args": dict(ev.args),
        })
    return events


def chrome_trace(tracers: Union[Tracer, Iterable[Tracer]]) -> Dict[str, Any]:
    """Merge one tracer per rank into a single Chrome trace object."""
    if isinstance(tracers, Tracer):
        tracers = [tracers]
    events: List[Dict[str, Any]] = []
    for tr in tracers:
        events.extend(chrome_events(tr))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, tracers: Union[Tracer, Iterable[Tracer]]) -> Path:
    """Export ``tracers`` to ``path`` as Chrome trace-event JSON."""
    trace = chrome_trace(tracers)
    out = Path(path)
    out.write_text(json.dumps(trace, indent=1, default=float) + "\n")
    return out


def validate_chrome_trace(trace: Any) -> List[str]:
    """Schema-check a trace object; return all problems found.

    Accepts both container forms of the format: the JSON-object form
    (``{"traceEvents": [...]}``) and the bare JSON-array form.
    """
    problems: List[str] = []
    if isinstance(trace, dict):
        events = trace.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object lacks a 'traceEvents' list"]
    elif isinstance(trace, list):
        events = trace
    else:
        return [f"trace must be an object or array, got {type(trace).__name__}"]

    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in VALID_PHASES:
            problems.append(f"{where}: missing/unknown phase 'ph' ({ph!r})")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where} (ph={ph}): missing 'name'")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where} (ph={ph}): missing integer {key!r}")
        if ph != "M" and not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"{where} (ph={ph}): missing numeric 'ts'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append(f"{where}: complete event missing numeric 'dur'")
            elif dur < 0:
                problems.append(f"{where}: negative 'dur' ({dur})")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"{where}: 'args' is not an object")
    return problems
