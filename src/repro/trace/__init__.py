"""``repro.trace`` — span tracing with Chrome trace-event export.

* :mod:`.tracer` — the per-rank :class:`Tracer`: nestable, thread- and
  rank-labelled spans plus instant events with counter payloads.
* :mod:`.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and the schema validator CI runs.
* :mod:`.predicted` — the same spans re-priced with
  :mod:`repro.perfmodel` durations for SW26010-Pro / ORISE.

Tracers are owned by :class:`repro.kokkos.context.ExecutionContext`
(one per rank) and stay disabled — and free — until
``ExecutionContext.enable_tracing()`` / ``ModelParams(trace=True)`` /
``python -m repro trace`` turns them on.
"""

from .tracer import Instant, Span, Tracer
from .export import (
    VALID_PHASES,
    chrome_events,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .predicted import predicted_timeline, write_predicted_timeline

__all__ = [
    "Tracer", "Span", "Instant",
    "chrome_events", "chrome_trace", "write_chrome_trace",
    "validate_chrome_trace", "VALID_PHASES",
    "predicted_timeline", "write_predicted_timeline",
]
