"""Ablation benchmarks: the paper's individual optimizations, measured.

A1  canuto load balance (Fig. 4)
A2  pack/unpack rewrite + 3-D halo transposes (Fig. 5)
A3  functor-registry matching (LDM cache / SIMD, §V-B)
A4  optimized-vs-original at scale (§VIII, via the machine model)
"""

import numpy as np
import pytest

from repro.experiments import ablations, performance
from repro.kokkos.registry import DictRegistry, LinkedListRegistry, RegistryEntry
from repro.ocean import demo, make_grid, make_topography
from repro.parallel import (
    BlockDecomposition,
    GHOST_HALO_TRANSPOSES,
    REAL_HALO_TRANSPOSES,
    SimWorld,
    SingleComm,
    exchange3d,
    pack_naive,
    pack_sliced,
)


# ---------------------------------------------------------------------------
# A1 — load balance
# ---------------------------------------------------------------------------

def test_a1_loadbalance_study(benchmark, save_artifact):
    rows = benchmark.pedantic(
        ablations.loadbalance_study,
        kwargs=dict(size="small", rank_counts=(4, 16, 36)), rounds=1, iterations=1)
    save_artifact("ablation_a1_loadbalance", ablations.format_loadbalance(rows))
    # the paper's motivation: imbalance is material at scale
    assert rows[-1][1].imbalance_factor > 1.2


@pytest.mark.parametrize("mode", ["naive", "balanced"])
def test_a1_column_compute(benchmark, mode):
    """Wall time of the canuto column sweep, naive vs redistributed.

    The compute function is deliberately costly so the distribution
    strategy dominates, as in the real kernel.
    """
    from repro.parallel import balanced_column_compute, naive_column_compute

    cfg = demo("tiny")
    grid = make_grid(cfg.ny, cfg.nx, cfg.nz)
    mask = ~np.asarray(make_topography(grid).kmt == 0)
    mask[:, cfg.nx // 2:] = False  # skew all work onto western blocks
    d = BlockDecomposition(cfg.ny, cfg.nx, 2, 2)
    fn = {"naive": naive_column_compute, "balanced": balanced_column_compute}[mode]

    def run():
        def prog(comm):
            return len(fn(comm, d, mask, lambda c: float(np.sum(np.arange(200.0)))))

        return SimWorld.run(prog, 4)

    counts = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sum(counts) == int(mask.sum())


# ---------------------------------------------------------------------------
# A2 — pack and 3-D halo strategies
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("packer", ["naive", "sliced"])
def test_a2_pack(benchmark, packer):
    arr = np.random.default_rng(0).standard_normal((600, 600))
    fn = {"naive": pack_naive, "sliced": pack_sliced}[packer]
    out = benchmark(fn, arr, slice(0, 600), slice(2, 4))
    assert out.shape == (600, 2)


@pytest.mark.parametrize("impl", ["naive", "blocked", "vectorized"])
def test_a2_real_halo_transpose(benchmark, impl):
    halo = np.random.default_rng(1).standard_normal((80, 2, 400))
    out = benchmark(REAL_HALO_TRANSPOSES[impl], halo)
    assert out.shape == (2, 400, 80)


@pytest.mark.parametrize("impl", ["naive", "blocked", "vectorized"])
def test_a2_ghost_halo_transpose(benchmark, impl):
    buf = np.random.default_rng(2).standard_normal((2, 400, 80))
    out = benchmark(GHOST_HALO_TRANSPOSES[impl], buf)
    assert out.shape == (80, 2, 400)


@pytest.mark.parametrize("method", ["per_level", "transposed"])
def test_a2_halo3d_method(benchmark, method):
    """Full 3-D halo update, per-level messages vs single transposed."""
    ny, nx, nz = 40, 48, 30
    d = BlockDecomposition(ny, nx, 1, 1)
    g = np.random.default_rng(3).standard_normal((nz, ny, nx))
    loc = d.scatter_global(g, 0)
    comm = SingleComm()
    benchmark(exchange3d, comm, d, 0, loc, 1.0, 0.0, method)


def test_a2_artifact(benchmark, save_artifact):
    save_artifact("ablation_a2_halo", benchmark.pedantic(
        ablations.format_halo_ablation, rounds=1, iterations=1))


# ---------------------------------------------------------------------------
# A3 — registry matching
# ---------------------------------------------------------------------------

def _registry(variant):
    return {
        "linked_list": lambda: LinkedListRegistry(),
        "ll_ldm_cache": lambda: LinkedListRegistry(ldm_cache=True),
        "ll_simd": lambda: LinkedListRegistry(simd_width=8),
        "ll_ldm_simd": lambda: LinkedListRegistry(ldm_cache=True, simd_width=8),
        "dict": lambda: DictRegistry(),
    }[variant]()


@pytest.mark.parametrize(
    "variant", ["linked_list", "ll_ldm_cache", "ll_simd", "ll_ldm_simd", "dict"]
)
def test_a3_registry_lookup(benchmark, variant):
    types = [type(f"B{i}", (), {}) for i in range(64)]
    reg = _registry(variant)
    for t in types:
        reg.register(RegistryEntry(t.__name__, t, "for", 1))
    hot = types[:8]

    def lookups():
        for _ in range(20):
            for t in hot:
                reg.lookup(t)

    benchmark(lookups)


def test_a3_artifact(benchmark, save_artifact):
    save_artifact("ablation_a3_registry", benchmark.pedantic(
        ablations.format_registry_ablation, rounds=1, iterations=1))


# ---------------------------------------------------------------------------
# A4 — optimized vs original at scale
# ---------------------------------------------------------------------------

def test_a4_optimization_speedups(benchmark, save_artifact):
    text = benchmark(performance.format_optimizations)
    save_artifact("ablation_a4_optimizations", text)
    assert "km_1km" in text


# ---------------------------------------------------------------------------
# A2-measured — original vs optimized halo path in the REAL model
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("variant", ["optimized", "original"])
def test_a2_model_step_halo_variants(benchmark, variant):
    """End-to-end model step with the paper's halo optimizations on/off
    (naive element-loop pack + per-level 3-D messages vs sliced pack +
    transposed single-message exchange).  Results are bitwise identical
    (asserted in tests); only the cost differs."""
    from repro.ocean import LICOMKpp, ModelParams, demo

    params = ModelParams() if variant == "optimized" else ModelParams(
        halo_packer="naive", halo_method3d="per_level")
    model = LICOMKpp(demo("small"), params=params)
    model.run_steps(2)
    benchmark(model.step)
