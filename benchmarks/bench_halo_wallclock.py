#!/usr/bin/env python
"""Wall-clock benchmark: fused vs per-field halo exchange (BENCH_halo).

Times ``rounds`` multi-field 3-D halo updates on a 4-rank SimWorld in
two modes — independent per-field :func:`exchange3d` calls versus one
:class:`FusedHaloExchange` message per neighbour per phase — and writes
``BENCH_halo.json`` with the best-of-``repeats`` wall-clock times, the
measured message aggregation, and the relative wall-clock reduction.

The fused path wins on three counts, all of which the simulator pays
for honestly: 4 messages per rank per round instead of 4 x n_fields
(each message costs mailbox synchronisation), zero-copy ``move=True``
sends instead of copy-on-send, and pooled persistent buffers instead of
per-call allocations.

Usage::

    PYTHONPATH=src python benchmarks/bench_halo_wallclock.py [--smoke]

``--smoke`` shrinks the run for CI (no reduction threshold enforced).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.parallel.comm import SimWorld
from repro.parallel.decomp import BlockDecomposition
from repro.parallel.halo import exchange3d
from repro.parallel.halo_fused import FusedHaloExchange

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"


def _local_fields(decomp, rank, nz, n_fields):
    ly, lx = decomp.local_shape(rank)
    rng = np.random.default_rng(1000 + rank)
    return [rng.standard_normal((nz, ly, lx)) for _ in range(n_fields)]


def _time_world(body, size, repeats):
    """Best-of-``repeats`` exchange-region wall seconds.

    Each rank times barrier-to-barrier around its exchange loop (field
    setup and thread spawn excluded); one repeat's cost is the slowest
    rank's time, and the benchmark keeps the best repeat.
    """
    best = float("inf")
    for _ in range(repeats):
        best = min(best, max(SimWorld.run(body, size)))
    return best


def run_benchmark(
    ny: int = 96,
    nx: int = 96,
    nz: int = 24,
    n_fields: int = 8,
    npy: int = 2,
    npx: int = 2,
    rounds: int = 20,
    repeats: int = 5,
) -> dict:
    decomp = BlockDecomposition(ny, nx, npy, npx)
    size = npy * npx

    def per_field(comm):
        fields = _local_fields(decomp, comm.rank, nz, n_fields)
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(rounds):
            for f in fields:
                exchange3d(comm, decomp, comm.rank, f, 1.0, 0.0)
        comm.barrier()
        return time.perf_counter() - t0

    def fused(comm):
        fields = _local_fields(decomp, comm.rank, nz, n_fields)
        fx = FusedHaloExchange(comm, decomp, comm.rank)
        specs = [(f, 1.0, 0.0) for f in fields]
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(rounds):
            fx.exchange(specs, phase="bench")
        comm.barrier()
        return time.perf_counter() - t0

    t_per_field = _time_world(per_field, size, repeats)
    t_fused = _time_world(fused, size, repeats)

    def traffic(body):
        return SimWorld.run(lambda comm: (body(comm), comm.world.traffic)[1],
                            size)[0]

    ledger_pf = traffic(per_field)
    ledger_fu = traffic(fused)

    return {
        "config": {
            "ny": ny, "nx": nx, "nz": nz, "n_fields": n_fields,
            "ranks": size, "rounds": rounds, "repeats": repeats,
        },
        "per_field_seconds": t_per_field,
        "fused_seconds": t_fused,
        "reduction": 1.0 - t_fused / t_per_field,
        "speedup": t_per_field / t_fused,
        "per_field_messages": ledger_pf.messages,
        "fused_messages": ledger_fu.messages,
        "aggregation": ledger_pf.messages / max(1, ledger_fu.messages),
        "per_field_bytes": ledger_pf.bytes,
        "fused_bytes": ledger_fu.bytes,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny run for CI; skips the reduction threshold")
    ap.add_argument("--out", type=pathlib.Path,
                    default=ARTIFACTS / "BENCH_halo.json")
    ap.add_argument("--min-reduction", type=float, default=0.25)
    args = ap.parse_args(argv)

    if args.smoke:
        result = run_benchmark(ny=32, nx=32, nz=6, n_fields=4,
                               rounds=3, repeats=2)
    else:
        result = run_benchmark()

    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(result, indent=2) + "\n")

    print(f"per-field: {result['per_field_seconds'] * 1e3:9.2f} ms "
          f"({result['per_field_messages']} messages)")
    print(f"fused:     {result['fused_seconds'] * 1e3:9.2f} ms "
          f"({result['fused_messages']} messages, "
          f"{result['aggregation']:.1f}x aggregation)")
    print(f"wall-clock reduction: {result['reduction'] * 100:.1f}% "
          f"({result['speedup']:.2f}x)")
    print(f"wrote {args.out}")

    if not args.smoke and result["reduction"] < args.min_reduction:
        print(f"FAIL: reduction {result['reduction']:.3f} "
              f"< {args.min_reduction}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
