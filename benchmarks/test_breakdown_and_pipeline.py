"""§VII-D analysis artifacts: step breakdown, DMA double buffering, Fig. 3 map.

* the per-component time breakdown behind the "why is ORISE faster than
  Sunway" discussion;
* the A5 ablation: double-buffered DMA pipeline speedup vs arithmetic
  intensity (§V-C2, the advection_tracer optimization);
* the mixed-precision projection (§VIII future work);
* a textual Fig. 3 (system-overview) map: paper component -> module.
"""

import numpy as np

from repro.ocean.config import PAPER_CONFIGS
from repro.perfmodel import (
    cpe_pipeline_time,
    double_buffer_speedup,
    format_breakdown_table,
    mixed_precision_projection,
    step_breakdown,
)

CFG1 = PAPER_CONFIGS["km_1km"]


def test_step_breakdown_artifact(benchmark, save_artifact):
    def build():
        return format_breakdown_table(
            CFG1, [("orise", 16000), ("new_sunway", 590250)]
        )

    text = benchmark(build)
    save_artifact("section7d_step_breakdown", text)
    # the paper's bandwidth argument: Sunway's compute3 share dominates
    sunway = step_breakdown(CFG1, "new_sunway", 590250)
    orise = step_breakdown(CFG1, "orise", 16000)
    assert sunway.compute3 > orise.compute3


def test_a5_double_buffer_ablation(benchmark, save_artifact):
    def sweep():
        lines = [f"{'flops/byte':>11s} {'speedup':>8s} {'dma bound':>10s}"]
        for ai in (0.5, 1, 2, 5, 10, 20, 50, 100):
            sp = double_buffer_speedup(800_000, 80.0, 80.0 * ai)
            est = cpe_pipeline_time(800_000, 80.0, 80.0 * ai)
            lines.append(f"{ai:>11.1f} {sp:>7.2f}x {str(est.dma_bound):>10s}")
        return "\n".join(lines)

    text = benchmark(sweep)
    save_artifact("ablation_a5_double_buffering", text)
    # the optimization approaches 2x where DMA and compute balance
    assert double_buffer_speedup(800_000, 80.0, 800.0) > 1.7


def test_mixed_precision_projection(benchmark, save_artifact):
    def build():
        lines = [f"{'machine':<14s} {'double':>8s} {'single':>8s} {'speedup':>8s}"]
        for machine, units in (("new_sunway", 590250), ("orise", 16000)):
            d, s, sp = mixed_precision_projection(CFG1, machine, units)
            lines.append(f"{machine:<14s} {d:>8.3f} {s:>8.3f} {sp:>7.2f}x")
        lines.append("(SViii: the bandwidth-bound Sunway benefits most)")
        return "\n".join(lines)

    text = benchmark(build)
    save_artifact("section8_mixed_precision", text)


def test_fig3_overview_map(benchmark, save_artifact):
    """Fig. 3 is the system-overview schematic; its reproducible content
    is the component -> implementation mapping."""

    def build():
        rows = [
            ("primitive equations", "repro.ocean (grid/baroclinic/barotropic/tracer)"),
            ("two-step shape-preserving advection", "repro.ocean.kernels_tracer"),
            ("canuto vertical mixing", "repro.ocean.vmix_canuto"),
            ("Kokkos parallel dispatch", "repro.kokkos.parallel"),
            ("KOKKOS_REGISTER_FOR macros", "repro.kokkos.functor"),
            ("linked-list functor registry", "repro.kokkos.registry"),
            ("Athread backend (this work)", "repro.kokkos.backends.athread"),
            ("CUDA / HIP backends", "repro.kokkos.backends.device"),
            ("OpenMP backend", "repro.kokkos.backends.openmp"),
            ("SW26010 Pro: 6 CG x (MPE + 64 CPE)", "repro.perfmodel.machines"),
            ("LDM (256 kB) + DMA", "repro.kokkos.ldm"),
            ("MPI halo exchange + tripolar fold", "repro.parallel.halo"),
            ("3-D halo transposes (Fig. 5)", "repro.parallel.halo_transpose"),
            ("canuto load balance (Fig. 4)", "repro.parallel.loadbalance"),
        ]
        width = max(len(a) for a, _ in rows)
        return "\n".join(f"{a:<{width}s}  ->  {b}" for a, b in rows)

    text = benchmark(build)
    save_artifact("fig3_overview_map", text)
    assert "athread" in text
