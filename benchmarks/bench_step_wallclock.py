#!/usr/bin/env python
"""Wall-clock benchmark: eager stepping vs graph replay + arena (BENCH_step).

Times steady-state baroclinic steps of the tiny demo configuration on
the athread (tiled) backend twice — once with eager dispatch and
per-call temporary allocation (the pre-graph baseline), once with the
step graph sealed (cached launch plans + elementwise fusion) and the
workspace arena on — and writes ``BENCH_step.json`` with best-of-
``repeats`` steps/sec, workspace allocations per step, and the
launch-count accounting from the sealed graph.

The athread backend is the benchmark config because it is the
dispatch-bound path the optimization targets: every launch pays the
tile sweep's spawn/join analogue, so cached plans and fused launches
move wall-clock, not just counters.  Numerics are bitwise identical in
both modes (enforced by ``tests/kokkos/test_graph.py``); this benchmark
only measures speed.

Usage::

    PYTHONPATH=src python benchmarks/bench_step_wallclock.py [--smoke]

``--smoke`` shrinks the run for CI and compares against the committed
``BENCH_step.json`` baseline instead of the absolute thresholds,
failing on a >15% speedup regression.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.kokkos import AthreadBackend, Instrumentation
from repro.ocean import LICOMKpp, demo
from repro.ocean.model import ModelParams

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"


def _make_model(params: ModelParams):
    """Model warmed past the Euler start step (and graph capture)."""
    inst = Instrumentation()
    model = LICOMKpp(demo("tiny"), backend=AthreadBackend(inst=inst),
                     params=params)
    model.run_steps(2)
    return model, inst


def _mode_stats(model, inst, best: float, steps: int) -> dict:
    """Steady-state rates and allocation counts for one timed mode."""
    inst.workspace.requests = 0
    inst.workspace.allocations = 0
    model.run_steps(steps)
    ws = inst.workspace
    graphs = [g for (startup, _), g in getattr(model, "_graphs", {}).items()
              if not startup]
    graph = graphs[0] if graphs else None
    return {
        "steps_per_sec": steps / best,
        "workspace_requests_per_step": ws.requests / steps,
        "allocations_per_step": ws.allocations / steps,
        "captured_launches": graph.captured_launches if graph else None,
        "replay_launches": graph.launches_per_replay if graph else None,
        "fused_groups": graph.fused_groups if graph else None,
    }


def run_benchmark(steps: int = 8, repeats: int = 6) -> dict:
    """Best-of-``repeats`` steps/sec, eager vs graph+arena.

    The two modes are timed in *interleaved* repeats (eager chunk, then
    graph chunk, repeatedly) so slow machine drift lands on both sides
    of the ratio instead of biasing whichever mode ran last.
    """
    m_eager, i_eager = _make_model(ModelParams(graph=False, arena=False))
    m_graph, i_graph = _make_model(ModelParams(graph=True, arena=True))
    best_eager = best_graph = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        m_eager.run_steps(steps)
        best_eager = min(best_eager, time.perf_counter() - t0)
        t0 = time.perf_counter()
        m_graph.run_steps(steps)
        best_graph = min(best_graph, time.perf_counter() - t0)
    eager = _mode_stats(m_eager, i_eager, best_eager, steps)
    graph = _mode_stats(m_graph, i_graph, best_graph, steps)
    alloc_eager = eager["allocations_per_step"]
    alloc_graph = graph["allocations_per_step"]
    return {
        "config": {
            "size": "tiny", "backend": "athread",
            "steps": steps, "repeats": repeats,
        },
        "eager": eager,
        "graph_arena": graph,
        "speedup": graph["steps_per_sec"] / eager["steps_per_sec"],
        # a warm arena allocates nothing, so floor the denominator at
        # one allocation per step to keep the ratio meaningful
        "allocation_reduction": alloc_eager / max(alloc_graph, 1.0),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small run for CI; compares against --baseline "
                         "instead of the absolute thresholds")
    ap.add_argument("--out", type=pathlib.Path,
                    default=ARTIFACTS / "BENCH_step.json")
    ap.add_argument("--baseline", type=pathlib.Path,
                    default=ARTIFACTS / "BENCH_step.json",
                    help="committed result the smoke run must stay within "
                         "15%% of")
    ap.add_argument("--min-speedup", type=float, default=1.3)
    ap.add_argument("--min-alloc-reduction", type=float, default=5.0)
    args = ap.parse_args(argv)

    baseline = None
    if args.smoke and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())

    if args.smoke:
        result = run_benchmark(steps=3, repeats=2)
    else:
        result = run_benchmark()

    if not args.smoke or args.out != args.baseline:
        args.out.parent.mkdir(exist_ok=True)
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.out}")

    e, g = result["eager"], result["graph_arena"]
    print(f"eager:       {e['steps_per_sec']:8.2f} steps/sec "
          f"({e['allocations_per_step']:.0f} allocations/step)")
    print(f"graph+arena: {g['steps_per_sec']:8.2f} steps/sec "
          f"({g['allocations_per_step']:.0f} allocations/step, "
          f"{g['captured_launches']} launches fused into "
          f"{g['replay_launches']})")
    print(f"speedup: {result['speedup']:.2f}x   "
          f"allocation reduction: {result['allocation_reduction']:.0f}x")

    failures = []
    if args.smoke:
        if baseline is not None:
            floor = 0.85 * baseline["speedup"]
            if result["speedup"] < floor:
                failures.append(
                    f"speedup {result['speedup']:.2f}x regressed >15% below "
                    f"baseline {baseline['speedup']:.2f}x")
            if (result["graph_arena"]["allocations_per_step"]
                    > baseline["graph_arena"]["allocations_per_step"]):
                failures.append(
                    "steady-state arena allocations/step regressed above "
                    f"baseline "
                    f"{baseline['graph_arena']['allocations_per_step']:.0f}")
    else:
        if result["speedup"] < args.min_speedup:
            failures.append(f"speedup {result['speedup']:.2f}x "
                            f"< {args.min_speedup}x")
        if result["allocation_reduction"] < args.min_alloc_reduction:
            failures.append(
                f"allocation reduction {result['allocation_reduction']:.1f}x "
                f"< {args.min_alloc_reduction}x")
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
