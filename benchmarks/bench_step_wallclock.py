#!/usr/bin/env python
"""Wall-clock benchmark: eager vs graph replay vs the compiled tier.

Times steady-state baroclinic steps of the tiny demo configuration on
the athread (tiled) backend three times — eager dispatch with per-call
temporary allocation (the pre-graph baseline), the step graph sealed
with the workspace arena but the compiled tier off (the interpreted
replay path), and the full configuration with the compiled tier on
(``repro.kokkos.jit``: cached launch plans + halo-aware fusion +
compiled sweeps) — and writes ``BENCH_step.json`` with best-of-
``repeats`` steps/sec, workspace allocations per step, the launch-count
accounting from the sealed graphs and the compiled-tier coverage.

The athread backend is the benchmark config because it is the
dispatch-bound path the optimization targets: every launch pays the
tile sweep's spawn/join analogue, so cached plans, fused launches and
compiled sweeps move wall-clock, not just counters.  Numerics are
bitwise identical in all modes (enforced by
``tests/ocean/test_graph_replay.py``); this benchmark only measures
speed.

Usage::

    PYTHONPATH=src python benchmarks/bench_step_wallclock.py [--smoke]
    PYTHONPATH=src python benchmarks/bench_step_wallclock.py --quick

``--smoke`` shrinks the run for CI and compares against the committed
``BENCH_step.json`` baseline instead of the absolute thresholds,
failing on a >15% speedup regression.  ``--quick`` is the fastest CI
gate: a tiny jit-only run asserting the compiled tier actually served
launches (coverage > 0) without timing anything.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.kokkos import AthreadBackend, Instrumentation
from repro.ocean import LICOMKpp, demo
from repro.ocean.model import ModelParams

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"


def _make_model(params: ModelParams):
    """Model warmed past the Euler start step, graph capture and the
    first compiled replay (which allocates its whole-range scratch)."""
    inst = Instrumentation()
    model = LICOMKpp(demo("tiny"), backend=AthreadBackend(inst=inst),
                     params=params)
    model.run_steps(3)
    return model, inst


def _steady_graph(model):
    graphs = [g for (startup, _), g in getattr(model, "_graphs", {}).items()
              if not startup]
    return graphs[0] if graphs else None


def _mode_stats(model, inst, best: float, steps: int) -> dict:
    """Steady-state rates and allocation counts for one timed mode."""
    inst.workspace.requests = 0
    inst.workspace.allocations = 0
    model.run_steps(steps)
    ws = inst.workspace
    graph = _steady_graph(model)
    stats = {
        "steps_per_sec": steps / best,
        "workspace_requests_per_step": ws.requests / steps,
        "allocations_per_step": ws.allocations / steps,
        "captured_launches": graph.captured_launches if graph else None,
        "replay_launches": graph.launches_per_replay if graph else None,
        "fused_groups": graph.fused_groups if graph else None,
        "compiled_launches": graph.compiled_launches if graph else None,
        "jit_coverage": graph.jit_coverage if graph else None,
    }
    if graph is not None:
        tiers: dict = {}
        for _, tier in graph.kernel_tiers():
            tiers[tier] = tiers.get(tier, 0) + 1
        stats["tiers"] = tiers
    return stats


def run_benchmark(steps: int = 8, repeats: int = 6) -> dict:
    """Best-of-``repeats`` steps/sec: eager vs graph+arena vs + jit.

    The modes are timed in *interleaved* repeats (an eager chunk, then a
    graph chunk, then a jit chunk, repeatedly) so slow machine drift
    lands on every side of the ratios instead of biasing whichever mode
    ran last.  ``graph_arena`` pins ``jit=False`` so its meaning —
    interpreted replay, the pre-compiled-tier baseline — is independent
    of the ``REPRO_JIT`` default.
    """
    modes = {
        "eager": ModelParams(graph=False, arena=False, jit=False),
        "graph_arena": ModelParams(graph=True, arena=True, jit=False),
        "graph_jit": ModelParams(graph=True, arena=True, jit=True),
    }
    models = {name: _make_model(p) for name, p in modes.items()}
    best = {name: float("inf") for name in modes}
    for _ in range(repeats):
        for name, (model, _) in models.items():
            t0 = time.perf_counter()
            model.run_steps(steps)
            best[name] = min(best[name], time.perf_counter() - t0)
    stats = {name: _mode_stats(model, inst, best[name], steps)
             for name, (model, inst) in models.items()}
    alloc_eager = stats["eager"]["allocations_per_step"]
    alloc_graph = stats["graph_arena"]["allocations_per_step"]
    eager_rate = stats["eager"]["steps_per_sec"]
    return {
        "config": {
            "size": "tiny", "backend": "athread",
            "steps": steps, "repeats": repeats,
        },
        **stats,
        "speedup": stats["graph_arena"]["steps_per_sec"] / eager_rate,
        "speedup_jit": stats["graph_jit"]["steps_per_sec"] / eager_rate,
        # a warm arena allocates nothing, so floor the denominator at
        # one allocation per step to keep the ratio meaningful
        "allocation_reduction": alloc_eager / max(alloc_graph, 1.0),
    }


def run_quick() -> int:
    """CI gate: the compiled tier must actually serve launches."""
    model, _ = _make_model(ModelParams(graph=True, arena=True, jit=True))
    graph = _steady_graph(model)
    if graph is None:
        print("FAIL: no steady-state graph captured", file=sys.stderr)
        return 1
    print(f"quick: {graph.compiled_launches}/{graph.launches_per_replay} "
          f"launches compiled ({graph.jit_coverage:.0%})")
    if graph.compiled_launches <= 0:
        print("FAIL: compiled tier served no launches (coverage 0)",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small run for CI; compares against --baseline "
                         "instead of the absolute thresholds")
    ap.add_argument("--quick", action="store_true",
                    help="fastest CI gate: assert compiled-tier coverage "
                         "> 0 on a tiny run, no timing")
    ap.add_argument("--out", type=pathlib.Path,
                    default=ARTIFACTS / "BENCH_step.json")
    ap.add_argument("--baseline", type=pathlib.Path,
                    default=ARTIFACTS / "BENCH_step.json",
                    help="committed result the smoke run must stay within "
                         "15%% of")
    ap.add_argument("--min-speedup", type=float, default=1.3)
    ap.add_argument("--min-speedup-jit", type=float, default=2.5)
    ap.add_argument("--min-alloc-reduction", type=float, default=5.0)
    args = ap.parse_args(argv)

    if args.quick:
        return run_quick()

    baseline = None
    if args.smoke and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())

    if args.smoke:
        result = run_benchmark(steps=3, repeats=2)
    else:
        result = run_benchmark()

    if not args.smoke or args.out != args.baseline:
        args.out.parent.mkdir(exist_ok=True)
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.out}")

    e, g, j = result["eager"], result["graph_arena"], result["graph_jit"]
    print(f"eager:       {e['steps_per_sec']:8.2f} steps/sec "
          f"({e['allocations_per_step']:.0f} allocations/step)")
    print(f"graph+arena: {g['steps_per_sec']:8.2f} steps/sec "
          f"({g['allocations_per_step']:.0f} allocations/step, "
          f"{g['captured_launches']} launches fused into "
          f"{g['replay_launches']})")
    print(f"graph+jit:   {j['steps_per_sec']:8.2f} steps/sec "
          f"({j['compiled_launches']}/{j['replay_launches']} launches "
          f"compiled, {j['jit_coverage']:.0%} coverage)")
    print(f"speedup: {result['speedup']:.2f}x (interpreted replay)   "
          f"{result['speedup_jit']:.2f}x (compiled tier)   "
          f"allocation reduction: {result['allocation_reduction']:.0f}x")

    failures = []
    if args.smoke:
        if baseline is not None:
            for key in ("speedup", "speedup_jit"):
                base = baseline.get(key)
                if base is None:
                    continue
                if result[key] < 0.85 * base:
                    failures.append(
                        f"{key} {result[key]:.2f}x regressed >15% below "
                        f"baseline {base:.2f}x")
            if (result["graph_arena"]["allocations_per_step"]
                    > baseline["graph_arena"]["allocations_per_step"]):
                failures.append(
                    "steady-state arena allocations/step regressed above "
                    f"baseline "
                    f"{baseline['graph_arena']['allocations_per_step']:.0f}")
        if result["graph_jit"]["compiled_launches"] in (None, 0):
            failures.append("compiled tier served no launches in smoke run")
    else:
        if result["speedup"] < args.min_speedup:
            failures.append(f"speedup {result['speedup']:.2f}x "
                            f"< {args.min_speedup}x")
        if result["speedup_jit"] < args.min_speedup_jit:
            failures.append(f"speedup_jit {result['speedup_jit']:.2f}x "
                            f"< {args.min_speedup_jit}x")
        if result["allocation_reduction"] < args.min_alloc_reduction:
            failures.append(
                f"allocation reduction {result['allocation_reduction']:.1f}x "
                f"< {args.min_alloc_reduction}x")
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
