"""Kernel microbenchmarks: the hotspots the paper optimizes.

``advection_tracer`` (the paper's top bottleneck) and the canuto
parameterization (second), timed through the portability layer on
different backends, plus the halo pack pipeline.
"""

import numpy as np
import pytest

from repro.kokkos import MDRangePolicy, OpenMPBackend, SerialBackend, View
from repro.ocean import LICOMKpp, demo
from repro.ocean.kernels_scalar import EOSFunctor, WFunctor
from repro.ocean.kernels_tracer import AdvectPredictorFunctor, FCTLimitFunctor
from repro.ocean.vmix_canuto import CanutoMixFunctor


@pytest.fixture(scope="module")
def model():
    m = LICOMKpp(demo("medium"))
    m.run_steps(2)
    return m


def _int2(m):
    d = m.domain
    h = d.halo
    return MDRangePolicy([(h, d.ly - h), (h, d.lx - h)])


def _full3(m):
    d = m.domain
    return MDRangePolicy([(0, d.nz), (0, d.ly), (0, d.lx)])


@pytest.mark.parametrize("backend_name", ["serial", "openmp"])
def test_advection_predictor(benchmark, model, backend_name):
    """The paper's #1 hotspot: the two-step advection predictor."""
    st = model.state
    be = SerialBackend() if backend_name == "serial" else OpenMPBackend(threads=4)
    f = AdvectPredictorFunctor(st.t.cur, st.u.cur, st.v.cur, st.w,
                               model.tstar, model.domain, 3600.0)
    benchmark(be.parallel_for, "advect_pred", _int2(model), f)
    if backend_name == "openmp":
        be.shutdown()


def test_fct_limiter(benchmark, model):
    st = model.state
    f = FCTLimitFunctor(st.t.cur, model.tstar, st.u.cur, st.v.cur, st.w,
                        model.rplus, model.rminus, model.domain, 3600.0)
    benchmark(SerialBackend().parallel_for, "fct_limits", _int2(model), f)


def test_canuto_kernel(benchmark, model):
    """The paper's #2 hotspot: the canuto vertical-mixing columns."""
    st = model.state
    f = CanutoMixFunctor(st.u.cur, st.v.cur, st.rho, st.kappa_m, st.kappa_h,
                         model.domain)
    benchmark(SerialBackend().parallel_for, "canuto", _int2(model), f)


def test_eos_kernel(benchmark, model):
    st = model.state
    f = EOSFunctor(st.t.cur, st.s.cur, st.rho, model.domain.mask_t)
    benchmark(SerialBackend().parallel_for, "eos", _full3(model), f)


def test_w_diagnostic(benchmark, model):
    st = model.state
    f = WFunctor(st.u.cur, st.v.cur, st.w, model.domain)
    benchmark(SerialBackend().parallel_for, "w", _int2(model), f)


def test_barotropic_subcycle(benchmark, model):
    """The communication-dense external mode (nsub FB substeps)."""
    benchmark(model._barotropic_cycle, 2 * model.config.dt_baroclinic)
