"""Fig. 7 — single-node performance portability.

Two parts: (a) the machine-model regeneration of the paper's SYPD bars,
and (b) a *measured* portability matrix: the same model stepped through
every backend of the portability layer, timed for real.
"""

import numpy as np
import pytest

from repro.experiments import performance
from repro.ocean import LICOMKpp, demo

BACKENDS = ["serial", "openmp", "athread", "cuda"]


def test_fig7_machine_model(benchmark, save_artifact):
    text = benchmark(performance.format_fig7)
    assert "new_sunway" in text
    save_artifact("fig7_portability", text)


@pytest.mark.parametrize("backend", BACKENDS)
def test_fig7_measured_step(benchmark, backend):
    """Wall time of one baroclinic step per backend (tiny config).

    This is the functional portability demonstration: identical source,
    four execution spaces, identical results (asserted in the tests);
    here we record the Python-level cost of each simulated backend.
    """
    model = LICOMKpp(demo("tiny"), backend=backend)
    model.run_steps(2)  # warm up past the Euler step
    benchmark(model.step)
    assert not model.state.has_nan()
