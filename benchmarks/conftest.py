"""Benchmark-suite helpers.

Every benchmark regenerates its paper artifact (the table/figure rows)
into ``benchmarks/artifacts/<name>.txt`` in addition to timing the
representative computation, so ``pytest benchmarks/ --benchmark-only``
leaves the full reproduction record on disk.
"""

from __future__ import annotations

import pathlib

import pytest

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def artifacts_dir() -> pathlib.Path:
    ARTIFACTS.mkdir(exist_ok=True)
    return ARTIFACTS


@pytest.fixture()
def save_artifact(artifacts_dir):
    def _save(name: str, text: str) -> None:
        (artifacts_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")

    return _save
