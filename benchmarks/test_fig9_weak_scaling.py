"""Fig. 9 — weak scaling across the six Table IV problem sizes."""

from repro.experiments import performance
from repro.ocean.config import WEAK_SCALING_CONFIGS
from repro.perfmodel import weak_scaling
from repro.perfmodel.calibration import weak_cases


def test_fig9_regeneration(benchmark, save_artifact):
    text = benchmark(performance.format_fig9)
    assert "weak scaling" in text
    save_artifact("fig9_weak_scaling", text)


def test_weak_scaling_sweep_cost(benchmark):
    """Cost of evaluating both machines' six-point weak-scaling sweeps."""

    def sweep():
        return (
            weak_scaling("orise", weak_cases("orise")),
            weak_scaling("new_sunway", weak_cases("new_sunway")),
        )

    orise, sunway = benchmark(sweep)
    assert orise[-1].efficiency > 0.8
    assert sunway[-1].efficiency > 0.85


def test_per_rank_load_is_constant(benchmark, save_artifact):
    """Table IV keeps ~107k points per rank across all six scales."""

    def build():
        lines = ["resolution  points/rank (ORISE GPUs)  points/rank (Sunway ranks)"]
        for cfg, gpus, cores in WEAK_SCALING_CONFIGS:
            per_gpu = cfg.grid_points / gpus
            per_cg = cfg.grid_points / (cores / 65)
            lines.append(f"{cfg.resolution_km:7.2f} km  {per_gpu:12.0f}  {per_cg:12.0f}")
        return "\n".join(lines)

    save_artifact("table4_per_rank_load", benchmark(build))
