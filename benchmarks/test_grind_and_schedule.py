"""Resolution-independence of the grind time + §VIII platform scheduling.

The scaling extrapolation rests on one claim: the model's cost per grid
point per step is resolution-independent (all kernels are local).  The
grind benchmark measures it across three demo sizes; the artifact
records the per-point times, which must agree within a small factor.
"""

import time

import numpy as np

from repro.ocean import LICOMKpp, demo
from repro.ocean.config import PAPER_CONFIGS
from repro.perfmodel import format_schedule


def _grind_seconds_per_point(size: str, steps: int = 4) -> float:
    model = LICOMKpp(demo(size))
    model.run_steps(2)  # warm up past the Euler step
    t0 = time.perf_counter()
    model.run_steps(steps)
    elapsed = time.perf_counter() - t0
    return elapsed / steps / model.config.grid_points


def test_grind_time_resolution_independent(benchmark, save_artifact):
    def measure():
        return {size: _grind_seconds_per_point(size)
                for size in ("tiny", "small", "medium")}

    grinds = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'size':<8s} {'grid':>14s} {'s/point/step':>14s}"]
    for size, g in grinds.items():
        cfg = demo(size)
        lines.append(f"{size:<8s} {cfg.nx:>5d}x{cfg.ny}x{cfg.nz:<3d} {g:>14.3e}")
    lines.append("(resolution independence justifies the Table V extrapolation;")
    lines.append(" small grids carry relatively more interpreter overhead)")
    save_artifact("grind_resolution_independence", "\n".join(lines))
    # within a factor ~6 across a 20x problem-size range (numpy overhead
    # dominates the smallest grid; the trend must be flat-to-decreasing)
    vals = list(grinds.values())
    assert max(vals) / min(vals) < 8.0
    assert vals[-1] <= vals[0]  # bigger grids amortize overhead


def test_platform_schedule_artifact(benchmark, save_artifact):
    """§VIII: choose the platform per simulation requirement."""

    def build():
        parts = []
        for cfg_name, target in (("km_1km", 1.0), ("eddy_10km", 5.0),
                                 ("coarse_100km", 100.0)):
            cfg = PAPER_CONFIGS[cfg_name]
            parts.append(format_schedule(
                cfg,
                {"orise": 16000, "new_sunway": 590250, "gpu_workstation": 64},
                target))
        return "\n\n".join(parts)

    text = benchmark(build)
    save_artifact("section8_platform_schedule", text)
    assert "chosen" in text
