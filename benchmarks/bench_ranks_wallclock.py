#!/usr/bin/env python
"""Wall-clock benchmark: thread-backed vs process-backed SimWorld ranks.

Times the steady-state stepping region of multi-step tiny-grid
integrations over 1/2/4/8 ranks on both rank substrates and writes
``BENCH_ranks.json``: steps/sec per (mode, ranks) cell, the
process/thread speedup per rank count, and the host core count.

Each rank times its own stepping loop (after a one-step warmup); a
cell's time is the slowest rank's — spawn, import and model build are
deliberately outside the timed region, because they amortize over a
real integration while the stepping rate is what the substrate changes.
Thread mode runs every rank under one GIL, so its aggregate rate cannot
scale with ranks; process mode gives each rank its own interpreter and
shared-memory halo traffic, so on a host with enough cores the 4-rank
process run should beat the 4-rank thread run by >=2x.  On fewer cores
the speedup degrades honestly toward parity (IPC overhead included) —
the ``cores`` field records what the numbers mean, and the absolute
gate only applies when the cores are there.

Before timing is trusted, every cell's final prognostic state is
checked bitwise against the 1-rank serial reference — a speedup on
wrong fields is worthless.

Usage::

    PYTHONPATH=src python benchmarks/bench_ranks_wallclock.py
    PYTHONPATH=src python benchmarks/bench_ranks_wallclock.py --quick

``--quick`` is the CI smoke: 2 ranks, 2 steps, identity check plus one
timed cell per mode, no thresholds.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"
WARMUP_STEPS = 1


def bench_rank_program(comm, cfg, backend, decomp, steps):
    """Per-rank body: build, warm up, time the stepping region.

    Module level so process mode can pickle it for spawn (children
    re-import this file as ``__mp_main__``).
    """
    from repro.ocean.model import LICOMKpp, STATE_FIELDS

    model = LICOMKpp(cfg, backend=backend, comm=comm, decomp=decomp)
    try:
        model.run_steps(WARMUP_STEPS)
        comm.barrier()  # all ranks enter the timed region together
        t0 = time.perf_counter()
        model.run_steps(steps)
        elapsed = time.perf_counter() - t0
        state = {f: getattr(model.state, f).cur.raw.copy()
                 for f in STATE_FIELDS}
        return {"rank": comm.rank, "elapsed": elapsed, "state": state}
    finally:
        model.close()


def _gather_global(results, decomp):
    """Stitch rank states back into global interior fields."""
    from repro.ocean.model import STATE_FIELDS

    ordered = sorted(results, key=lambda r: r["rank"])
    return {fld: decomp.gather_global([r["state"][fld] for r in ordered])
            for fld in STATE_FIELDS}


def _run_cell(cfg, ranks, steps, mode, backend="serial"):
    """One benchmark cell: (slowest-rank stepping seconds, global fields)."""
    from repro.parallel.comm import SimWorld
    from repro.parallel.decomp import BlockDecomposition, choose_process_grid

    npy, npx = choose_process_grid(cfg.ny, cfg.nx, ranks)
    decomp = BlockDecomposition(cfg.ny, cfg.nx, npy, npx)
    results = SimWorld.run(bench_rank_program, ranks, mode=mode,
                           args=(cfg, backend, decomp, steps))
    elapsed = max(r["elapsed"] for r in results)
    return elapsed, _gather_global(results, decomp)


def run_benchmark(steps: int, rank_counts, repeats: int = 2) -> dict:
    from repro.ocean import demo

    cfg = demo("tiny")
    # bitwise reference: single-rank serial
    _, reference = _run_cell(cfg, 1, steps, "thread")

    cells = {}
    for ranks in rank_counts:
        for mode in ("thread", "process"):
            best = float("inf")
            for _ in range(repeats):
                elapsed, fields = _run_cell(cfg, ranks, steps, mode)
                best = min(best, elapsed)
            for fld, ref in reference.items():
                if not np.array_equal(fields[fld], ref):
                    raise SystemExit(
                        f"FAIL: {mode} mode at {ranks} ranks diverged from "
                        f"the serial reference on field {fld!r}")
            cells[f"{mode}_{ranks}"] = {"seconds": best,
                                        "steps_per_sec": steps / best}

    speedups = {
        ranks: (cells[f"thread_{ranks}"]["seconds"]
                / cells[f"process_{ranks}"]["seconds"])
        for ranks in rank_counts
    }
    return {
        "config": {"size": "tiny", "backend": "serial", "steps": steps,
                   "repeats": repeats, "rank_counts": list(rank_counts),
                   "timed_region": "stepping only (post-warmup, "
                                   "slowest rank)"},
        "cores": os.cpu_count(),
        "cells": cells,
        "process_over_thread_speedup": {str(r): s
                                        for r, s in speedups.items()},
        "bitwise_identical": True,
    }


def run_quick() -> int:
    """CI smoke: identity at 2 ranks plus one timed cell per mode."""
    from repro.ocean import demo

    cfg = demo("tiny")
    _, reference = _run_cell(cfg, 1, 2, "thread")
    for mode in ("thread", "process"):
        elapsed, fields = _run_cell(cfg, 2, 2, mode)
        for fld, ref in reference.items():
            if not np.array_equal(fields[fld], ref):
                print(f"FAIL: {mode} mode diverged on {fld!r}",
                      file=sys.stderr)
                return 1
        print(f"quick: {mode:7s} 2 ranks x 2 steps in {elapsed:.3f}s "
              "(bitwise identical to serial)")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke: 2 ranks, identity check, no thresholds")
    ap.add_argument("--steps", type=int, default=8)
    ap.add_argument("--ranks", type=int, nargs="+", default=[1, 2, 4, 8])
    ap.add_argument("--out", type=pathlib.Path,
                    default=ARTIFACTS / "BENCH_ranks.json")
    ap.add_argument("--min-speedup-4", type=float, default=2.0,
                    help="required 4-rank process/thread speedup (only "
                         "enforced when the host has >= 4 cores)")
    args = ap.parse_args(argv)

    if args.quick:
        return run_quick()

    result = run_benchmark(args.steps, args.ranks)
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")

    print(f"host cores: {result['cores']}")
    for ranks in args.ranks:
        t = result["cells"][f"thread_{ranks}"]["steps_per_sec"]
        p = result["cells"][f"process_{ranks}"]["steps_per_sec"]
        s = result["process_over_thread_speedup"][str(ranks)]
        print(f"ranks={ranks}: thread {t:7.2f} steps/s   "
              f"process {p:7.2f} steps/s   speedup {s:.2f}x")

    cores = result["cores"] or 1
    speedup4 = float(result["process_over_thread_speedup"].get("4", 0.0))
    if 4 in args.ranks and cores >= 4 and speedup4 < args.min_speedup_4:
        print(f"FAIL: 4-rank process/thread speedup {speedup4:.2f}x "
              f"< {args.min_speedup_4}x on a {cores}-core host",
              file=sys.stderr)
        return 1
    if cores < 4:
        print(f"note: {cores}-core host cannot demonstrate multi-core "
              "scaling; speedup gate skipped (numbers above are honest "
              "single-core results)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
