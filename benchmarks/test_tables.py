"""Tables I-IV regenerators (static registries + grid construction cost)."""

from repro.experiments import tables
from repro.ocean import demo, make_grid, make_topography


def test_table1_support_matrix(benchmark, save_artifact):
    text = benchmark(tables.format_table1)
    assert "Athread" in text
    save_artifact("table1_support_matrix", text)


def test_table2_hardware(benchmark, save_artifact):
    text = benchmark(tables.format_table2)
    assert "SW26010" in text
    save_artifact("table2_hardware", text)


def test_table3_configurations(benchmark, save_artifact):
    text = benchmark(tables.format_table3)
    assert "36000" in text
    save_artifact("table3_configurations", text)


def test_table4_weak_scaling_scales(benchmark, save_artifact):
    text = benchmark(tables.format_table4)
    assert "38366250" in text
    save_artifact("table4_weak_scaling_scales", text)


def test_grid_and_topography_construction(benchmark):
    """Cost of building a full demo grid + synthetic topography."""
    cfg = demo("medium")

    def build():
        grid = make_grid(cfg.ny, cfg.nx, cfg.nz)
        return make_topography(grid)

    topo = benchmark(build)
    assert topo.ocean_fraction > 0.4
