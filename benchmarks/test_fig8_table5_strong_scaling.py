"""Fig. 8 / Table V — strong scaling on ORISE and the new Sunway.

The artifact is the full Table V regeneration (model vs paper for all
six sweeps).  The benchmark times the sweep computation, and a second
benchmark measures *functional* strong scaling of the real model: the
same tiny problem on 1 vs 4 simulated ranks (communication included).
"""

import numpy as np

from repro.experiments import performance
from repro.ocean import LICOMKpp, demo
from repro.parallel import BlockDecomposition, SimWorld


def test_table5_regeneration(benchmark, save_artifact):
    text = benchmark(performance.format_table5)
    assert "paper SYPD" in text
    save_artifact("table5_fig8_strong_scaling", text)


def test_functional_multirank_step(benchmark):
    """Four simulated ranks stepping the tiny config (halo traffic real)."""
    cfg = demo("tiny")
    d = BlockDecomposition(cfg.ny, cfg.nx, 2, 2)

    def run():
        def prog(comm):
            m = LICOMKpp(cfg, comm=comm, decomp=d)
            m.run_steps(2)
            return m.kinetic_energy()

        return SimWorld.run(prog, d.size)

    kes = benchmark.pedantic(run, rounds=2, iterations=1)
    assert all(np.isfinite(k) for k in kes)


def test_single_rank_step_baseline(benchmark):
    """Single-rank baseline for the functional scaling comparison."""
    cfg = demo("tiny")
    model = LICOMKpp(cfg)
    model.run_steps(2)
    benchmark(model.step)
    assert not model.state.has_nan()
