"""Figs 1, 2 and 6 — the science-result and landscape regenerators.

Fig. 1/6 run the actual ocean model at laptop-scale analogs; the
benchmark times the dominant diagnostics, the artifacts carry the
paper-claim evaluations.
"""

import numpy as np

from repro.experiments import performance, science
from repro.ocean import LICOMKpp, demo, rossby_number, rossby_stats


def test_fig2_related_work(benchmark, save_artifact):
    text = benchmark(performance.format_fig2)
    assert "this work" in text
    save_artifact("fig2_related_work", text)


def test_fig1_sst_and_trench(benchmark, save_artifact):
    result = benchmark.pedantic(science.run_fig1, kwargs=dict(size="tiny", days=3.0),
                                rounds=1, iterations=1)
    text = science.format_fig1(result)
    assert result.trench_max_depth > 10000.0
    save_artifact("fig1_sst_trench", text)


def test_fig1_step_cost(benchmark):
    """Cost of one model step at the small demo size (Fig. 1 workload)."""
    model = LICOMKpp(demo("small"))
    model.run_steps(2)
    benchmark(model.step)


def test_fig6_rossby_resolution_comparison(benchmark, save_artifact):
    stats = benchmark.pedantic(
        science.run_fig6, kwargs=dict(sizes=("tiny", "small"), days=4.0),
        rounds=1, iterations=1)
    assert stats[-1].rms > stats[0].rms
    save_artifact("fig6_rossby_resolution", science.format_fig6(stats))


def test_fig6_rossby_diagnostic_cost(benchmark):
    """Cost of the Rossby-number diagnostic itself."""
    model = LICOMKpp(demo("small"))
    model.run_steps(4)
    ro = benchmark(rossby_number, model)
    assert np.isfinite(ro[np.isfinite(ro)]).all()
