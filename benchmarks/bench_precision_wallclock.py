#!/usr/bin/env python
"""Wall-clock + wire-byte benchmark of the mixed-precision policy.

Times steady-state baroclinic steps of the tiny demo at the fp64 and
``mixed`` precision policies on every execution tier — eager dispatch,
sealed-graph replay with the workspace arena, and the compiled tier —
then measures the halo wire bytes of a 2-rank run under both policies
from the SimWorld TrafficLedger.  Writes ``BENCH_precision.json`` with
best-of-``repeats`` steps/sec per (policy, tier), the per-phase halo
byte volumes and the 3-D halo reduction factor.

What the numbers must show: the mixed policy's 3-D halo traffic (the
fp32 tracer/momentum exchanges) shrinks by >= 1.8x while the 2-D
barotropic phase is byte-identical (it stays fp64 by policy), and the
cast launches the policy inserts do not cost a measurable step-rate
regression (>= ``--min-rate-ratio`` of fp64 on every tier).  In this
pure-NumPy reproduction the bandwidth win of fp32 arithmetic is mostly
invisible in wall-clock — the honest claim is the byte accounting,
which is exactly what the performance model prices
(:mod:`repro.perfmodel.familycost`).

Usage::

    PYTHONPATH=src python benchmarks/bench_precision_wallclock.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.ocean import LICOMKpp, demo
from repro.ocean.model import ModelParams, run_distributed

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"

TIERS = {
    "eager": dict(graph=False, arena=False, jit=False),
    "graph_arena": dict(graph=True, arena=True, jit=False),
    "graph_jit": dict(graph=True, arena=True, jit=True),
}
PRECISIONS = ("double", "mixed")


def _make_model(precision: str, tier_kwargs: dict) -> LICOMKpp:
    model = LICOMKpp(demo("tiny"),
                     params=ModelParams(precision=precision, **tier_kwargs))
    model.run_steps(3)    # past the Euler start step + graph capture
    return model


def time_steps(steps: int, repeats: int) -> dict:
    """Best-of-``repeats`` steps/sec for every (policy, tier) pair.

    Interleaved repeats (like ``bench_step_wallclock``) so machine
    drift lands on every side of the ratios.
    """
    models = {(p, t): _make_model(p, kw)
              for p in PRECISIONS for t, kw in TIERS.items()}
    best = {key: float("inf") for key in models}
    for _ in range(repeats):
        for key, model in models.items():
            t0 = time.perf_counter()
            model.run_steps(steps)
            best[key] = min(best[key], time.perf_counter() - t0)
    out: dict = {p: {} for p in PRECISIONS}
    for (p, t), dt in best.items():
        out[p][t] = steps / dt
    return out


def measure_halo_bytes(ranks: int = 2, steps: int = 3) -> dict:
    """Per-phase wire bytes of a multi-rank run under each policy."""
    out = {}
    for precision in PRECISIONS:
        _, world = run_distributed(
            demo("tiny"), ranks, steps,
            params=ModelParams(precision=precision))
        out[precision] = {phase: int(nbytes)
                          for phase, (_, nbytes)
                          in sorted(world.traffic.by_phase.items())}
    return out


def run_benchmark(steps: int, repeats: int) -> dict:
    rates = time_steps(steps, repeats)
    halo = measure_halo_bytes()
    result = {
        "config": {"size": "tiny", "backend": "serial",
                   "steps": steps, "repeats": repeats, "halo_ranks": 2},
        "steps_per_sec": rates,
        "halo_bytes": halo,
        "halo3_reduction": halo["double"]["halo3"] / halo["mixed"]["halo3"],
        "halo2_identical": halo["double"]["halo2"] == halo["mixed"]["halo2"],
        "mixed_rate_ratio": {
            tier: rates["mixed"][tier] / rates["double"][tier]
            for tier in TIERS
        },
    }
    return result


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small run for CI (fewer steps/repeats)")
    ap.add_argument("--out", type=pathlib.Path,
                    default=ARTIFACTS / "BENCH_precision.json")
    ap.add_argument("--min-halo3-reduction", type=float, default=1.8)
    ap.add_argument("--min-rate-ratio", type=float, default=0.8,
                    help="mixed steps/sec must stay within this factor "
                         "of fp64 on every tier (casts are cheap)")
    args = ap.parse_args(argv)

    if args.smoke:
        result = run_benchmark(steps=2, repeats=2)
    else:
        result = run_benchmark(steps=6, repeats=4)

    if not args.smoke:
        args.out.parent.mkdir(exist_ok=True)
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.out}")

    for p in PRECISIONS:
        rates = "  ".join(f"{t}: {r:7.2f}" for t, r in
                          result["steps_per_sec"][p].items())
        print(f"{p:<7} steps/sec  {rates}")
    print(f"halo bytes: double {result['halo_bytes']['double']}  "
          f"mixed {result['halo_bytes']['mixed']}")
    print(f"halo3 reduction: {result['halo3_reduction']:.2f}x  "
          f"halo2 identical: {result['halo2_identical']}")

    failures = []
    if result["halo3_reduction"] < args.min_halo3_reduction:
        failures.append(
            f"halo3 reduction {result['halo3_reduction']:.2f}x < "
            f"{args.min_halo3_reduction}x")
    if not result["halo2_identical"]:
        failures.append("fp64 barotropic halo bytes changed under mixed")
    for tier, ratio in result["mixed_rate_ratio"].items():
        if ratio < args.min_rate_ratio:
            failures.append(
                f"mixed {tier} rate is {ratio:.2f}x of fp64 "
                f"(< {args.min_rate_ratio})")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
